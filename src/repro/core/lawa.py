"""LAWA — the lineage-aware window advancer (Algorithm 1 of the paper).

LAWA sweeps two duplicate-free TP relations, sorted by ``(F, Ts)``, and
emits a stream of lineage-aware temporal windows.  Each call advances the
sweep by exactly one window; the per-call work is O(1), so producing all
windows is linear in the input size, and by Proposition 1 the number of
windows is at most ``nr + ns − fd`` (start/end points of both relations
minus the number of distinct facts).

This class is the paper-shaped *reference path*: one window object per
``advance()`` call, state in an explicit status record.  The production
set operations run the fused kernel in :mod:`repro.core.setops`
(DESIGN.md §6), which inlines this exact state machine into one loop;
``tests/test_setops_fused.py`` pins the two bit-identical.  Keep both in
sync when touching either.

The published pseudocode contains editorial glitches that this
implementation corrects (documented in DESIGN.md §3 and pinned by tests
against the snapshot-semantics oracle):

* the termination guard of line 3 must test both relations for exhaustion;
* choosing the start of a fresh window must respect the ``(F, Ts)`` sort
  order, preferring cursor tuples that continue the current fact group;
* only cursor tuples carrying the *current* fact may bound ``winTe`` —
  otherwise a long-lived tuple of fact f would be truncated by unrelated
  facts (the paper's single-fact experiments never exercise this).

The sweep state corresponds 1:1 to the paper's ``status`` record:
``prevWinTe``, ``currFact``, ``rValid``, ``sValid`` and the two cursors.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from .sorting import sort_key_le
from .tuple import TPTuple
from .window import LineageWindow

__all__ = ["LawaSweep", "lawa_windows"]

_UNSET = object()  # currFact sentinel distinct from any real fact


class LawaSweep:
    """Stateful window advancer over two sorted tuple sequences.

    ``advance()`` performs one LAWA call and returns the next
    lineage-aware temporal window, or ``None`` once both inputs are fully
    swept.  The properties :attr:`r_exhausted` / :attr:`s_exhausted` let
    the set-operation drivers stop early (e.g. set difference needs no
    windows once the left relation is exhausted).
    """

    __slots__ = (
        "_r",
        "_s",
        "_ri",
        "_si",
        "_r_valid",
        "_s_valid",
        "_prev_win_te",
        "_curr_fact",
        "windows_produced",
    )

    def __init__(self, r_sorted: Sequence[TPTuple], s_sorted: Sequence[TPTuple]) -> None:
        self._r = r_sorted
        self._s = s_sorted
        self._ri = 0
        self._si = 0
        self._r_valid: Optional[TPTuple] = None
        self._s_valid: Optional[TPTuple] = None
        self._prev_win_te: int = -1
        self._curr_fact: object = _UNSET
        #: Number of windows produced so far (Proposition 1 accounting).
        self.windows_produced = 0

    # ------------------------------------------------------------------
    # cursor helpers
    # ------------------------------------------------------------------
    def _peek_r(self) -> Optional[TPTuple]:
        return self._r[self._ri] if self._ri < len(self._r) else None

    def _peek_s(self) -> Optional[TPTuple]:
        return self._s[self._si] if self._si < len(self._s) else None

    @property
    def r_exhausted(self) -> bool:
        """True when the left relation can contribute no further lineage."""
        return self._r_valid is None and self._ri >= len(self._r)

    @property
    def s_exhausted(self) -> bool:
        """True when the right relation can contribute no further lineage."""
        return self._s_valid is None and self._si >= len(self._s)

    # ------------------------------------------------------------------
    # one LAWA call
    # ------------------------------------------------------------------
    def advance(self) -> Optional[LineageWindow]:
        """Produce the next lineage-aware temporal window (Algorithm 1).

        The body is a hand-optimized transliteration of the pseudocode:
        cursor state is pulled into locals (attribute access dominates the
        per-call cost in CPython) and written back once at the end.
        """
        tuples_r, tuples_s = self._r, self._s
        ri, si = self._ri, self._si
        r = tuples_r[ri] if ri < len(tuples_r) else None
        s = tuples_s[si] if si < len(tuples_s) else None
        r_valid = self._r_valid
        s_valid = self._s_valid
        fact = self._curr_fact

        if r_valid is None and s_valid is None:
            # No tuple spans the previous boundary: open a fresh window.
            # Cursor tuples continuing the current fact group take
            # precedence; otherwise the sweep moves to the smallest
            # (F, Ts) key, keeping fact groups contiguous and the output
            # sorted.
            r_continues = r is not None and r.fact == fact
            s_continues = s is not None and s.fact == fact
            if r_continues and s_continues:
                win_ts = min(r.interval.start, s.interval.start)
            elif r_continues:
                win_ts = r.interval.start
            elif s_continues:
                win_ts = s.interval.start
            elif r is None and s is None:
                return None
            else:
                if s is None or (r is not None and sort_key_le(r, s)):
                    opener = r
                else:
                    opener = s
                fact = self._curr_fact = opener.fact
                win_ts = opener.interval.start
        else:
            # Continuation: the new window is adjacent to the previous one.
            win_ts = self._prev_win_te

        # Absorb cursor tuples that become valid exactly at winTs.
        if r is not None and r.fact == fact and r.interval.start == win_ts:
            r_valid = r
            ri += 1
            r = tuples_r[ri] if ri < len(tuples_r) else None
        if s is not None and s.fact == fact and s.interval.start == win_ts:
            s_valid = s
            si += 1
            s = tuples_s[si] if si < len(tuples_s) else None

        # winTe: the earliest among (a) end points of the valid tuples and
        # (b) start points of upcoming same-fact tuples — a start marks a
        # change in the set of valid tuples and therefore a new window.
        win_te: Optional[int] = None
        if r is not None and r.fact == fact:
            win_te = r.interval.start
        if s is not None and s.fact == fact:
            start = s.interval.start
            if win_te is None or start < win_te:
                win_te = start
        lam_r = lam_s = None
        if r_valid is not None:
            lam_r = r_valid.lineage
            end = r_valid.interval.end
            if win_te is None or end < win_te:
                win_te = end
        if s_valid is not None:
            lam_s = s_valid.lineage
            end = s_valid.interval.end
            if win_te is None or end < win_te:
                win_te = end
        assert win_te is not None and win_te > win_ts, "LAWA produced an empty window"

        window = LineageWindow(fact, win_ts, win_te, lam_r, lam_s)

        # Expire valid tuples that end exactly at the window boundary.
        if r_valid is not None and r_valid.interval.end == win_te:
            r_valid = None
        if s_valid is not None and s_valid.interval.end == win_te:
            s_valid = None

        self._ri, self._si = ri, si
        self._r_valid, self._s_valid = r_valid, s_valid
        self._prev_win_te = win_te
        self.windows_produced += 1
        return window

    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[LineageWindow]:
        return self

    def __next__(self) -> LineageWindow:
        window = self.advance()
        if window is None:
            raise StopIteration
        return window


def lawa_windows(
    r_sorted: Sequence[TPTuple], s_sorted: Sequence[TPTuple]
) -> Iterator[LineageWindow]:
    """Iterate over every lineage-aware temporal window of the two inputs."""
    return iter(LawaSweep(r_sorted, s_sorted))
