"""The probabilistic timeslice operator τᵖₜ.

Section IV of the paper defines the probabilistic snapshot of a TP
relation r at time point t as::

    τᵖₜ(r) = {(r.F, r.λ, [t, t+1), r.p) | r ∈ r ∧ t ∈ r.T}

Snapshot reducibility (Def. 1) is phrased in terms of this operator: a TP
operation commutes with taking probabilistic snapshots.  The tests in
``tests/test_semantics_properties.py`` verify exactly that equation for
LAWA and every baseline.
"""

from __future__ import annotations

from .interval import Interval
from .relation import TPRelation
from .tuple import TPTuple

__all__ = ["timeslice", "snapshot_lineages"]


def timeslice(relation: TPRelation, t: int) -> TPRelation:
    """The probabilistic snapshot τᵖₜ(r) as a TP relation over ``[t, t+1)``."""
    window = Interval(t, t + 1)
    sliced = [
        TPTuple(fact=u.fact, lineage=u.lineage, interval=window, p=u.p)
        for u in relation
        if u.interval.contains_point(t)
    ]
    return TPRelation(
        f"τ[{t}]({relation.name})",
        relation.schema,
        sliced,
        relation.events,
        validate=False,
    )


def snapshot_lineages(relation: TPRelation, t: int) -> dict:
    """Map fact → lineage of the (unique) tuple valid at time point t.

    This is the λ^{r,f}_t notation of the paper.  Duplicate-freeness
    guarantees at most one tuple per fact at any time point; facts without
    a valid tuple are absent from the map (the paper's ``null``).
    """
    out = {}
    for u in relation:
        if u.interval.contains_point(t):
            out[u.fact] = u.lineage
    return out
