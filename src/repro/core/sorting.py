"""Sorting of TP relations by ``(fact, Ts)``.

The sorting step is the O(n log n) part of the LAWA pipeline (paper,
Section VI-B).  The paper notes that a counting-based sort brings the
total down to linear time whenever the time domain ΩT fits in memory; we
implement both strategies behind one entry point so benchmarks can compare
them (`benchmarks/test_complexity_ablation.py`).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .tuple import TPTuple

__all__ = ["sort_comparison", "sort_counting", "sort_tuples", "is_sorted"]


def sort_comparison(tuples: Iterable[TPTuple]) -> list[TPTuple]:
    """Timsort by the ``(fact, Ts)`` key — the default strategy."""
    return sorted(tuples, key=lambda t: t.sort_key)


def sort_counting(tuples: Iterable[TPTuple]) -> list[TPTuple]:
    """Counting-based sort: group by fact, counting-sort starts per group.

    Linear in ``n + |ΩT|`` per fact group.  Facts themselves are ordered
    with a comparison sort, but the number of distinct facts is typically
    far below the number of tuples, so in the regimes the paper discusses
    (few facts, many intervals) the overall cost is effectively linear.
    Falls back gracefully for sparse domains: buckets are allocated only
    over each group's own start range.
    """
    groups: dict[tuple, list[TPTuple]] = {}
    for t in tuples:
        groups.setdefault(t.fact, []).append(t)

    ordered: list[TPTuple] = []
    for fact in sorted(groups):
        group = groups[fact]
        lo = min(t.start for t in group)
        hi = max(t.start for t in group)
        width = hi - lo + 1
        if width > 4 * len(group) + 16:
            # Domain too sparse for dense buckets: comparison sort wins.
            group.sort(key=lambda t: t.start)
            ordered.extend(group)
            continue
        buckets: list[list[TPTuple]] = [[] for _ in range(width)]
        for t in group:
            buckets[t.start - lo].append(t)
        for bucket in buckets:
            # Duplicate-free relations put at most one same-fact tuple per
            # start point, but we stay safe for raw tuple streams.
            ordered.extend(bucket)
    return ordered


def sort_tuples(tuples: Iterable[TPTuple], *, strategy: str = "comparison") -> list[TPTuple]:
    """Sort by ``(fact, Ts)`` using the requested strategy."""
    if strategy == "comparison":
        return sort_comparison(tuples)
    if strategy == "counting":
        return sort_counting(tuples)
    raise ValueError(f"unknown sort strategy {strategy!r}")


def is_sorted(tuples: Sequence[TPTuple]) -> bool:
    """True iff the sequence is already in ``(fact, Ts)`` order."""
    return all(
        tuples[i].sort_key <= tuples[i + 1].sort_key for i in range(len(tuples) - 1)
    )
