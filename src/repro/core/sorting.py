"""Sorting of TP relations by ``(fact, Ts)``.

The sorting step is the O(n log n) part of the LAWA pipeline (paper,
Section VI-B).  The paper notes that a counting-based sort brings the
total down to linear time whenever the time domain ΩT fits in memory; we
implement both strategies behind one entry point so benchmarks can compare
them (`benchmarks/test_complexity_ablation.py`).

Output contract
---------------
Both strategies produce the identical order on the *same* input — also on
raw, not-yet-deduplicated streams where several same-fact tuples may share
a start point (duplicate-free relations cannot tie on ``(F, Ts)``, but
loaders and baseline intermediates can).  Ties on ``(F, Ts)`` are broken
by ``Te`` and then by input order (stability); :func:`sort_counting`
enforces this by comparison-sorting within a start-point bucket whenever a
bucket holds more than one tuple (DESIGN.md §6.2).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .tuple import TPTuple

__all__ = [
    "sort_comparison",
    "sort_counting",
    "sort_tuples",
    "is_sorted",
    "fact_lt",
    "null_safe_key",
    "null_safe_fact_key",
    "sort_key_le",
    "sort_key_lt",
]


def _full_key(t: TPTuple) -> tuple:
    return (t.fact, t.interval.start, t.interval.end)


def fact_lt(a, b) -> bool:
    """``a < b`` on facts, total also for null-padded facts.

    The sweep kernels compare facts only when *crossing* fact groups
    (opening a fresh window, merging group lists) — a cold path — but a
    raw tuple comparison is untyped once outer-join outputs put ``None``
    next to concrete values.  The raw order is tried first (free when it
    succeeds, and identical to the null-safe order wherever it is
    defined, since any pair the raw comparison decides never reaches a
    ``None``); the :func:`null_safe_fact_key` convention decides the
    rest.  Inputs containing such facts are always born sorted in that
    same convention (the join kernels emit it), so cursor advancement
    stays consistent with the input order.
    """
    try:
        return a < b
    except TypeError:
        return null_safe_fact_key(a) < null_safe_fact_key(b)


def sort_key_lt(a: TPTuple, b: TPTuple) -> bool:
    """``a.sort_key < b.sort_key``, total for null-padded facts."""
    try:
        return a.sort_key < b.sort_key
    except TypeError:
        return (null_safe_fact_key(a.fact), a.interval.start) < (
            null_safe_fact_key(b.fact), b.interval.start,
        )


def sort_key_le(a: TPTuple, b: TPTuple) -> bool:
    """``a.sort_key <= b.sort_key``, total for null-padded facts."""
    try:
        return a.sort_key <= b.sort_key
    except TypeError:
        return (null_safe_fact_key(a.fact), a.interval.start) <= (
            null_safe_fact_key(b.fact), b.interval.start,
        )


def null_safe_fact_key(fact) -> tuple:
    """The fact component of :func:`null_safe_key`.

    The single definition of the null-safe fact ordering convention —
    the batch join driver and the incremental view engine both sort by
    it, so their outputs stay order-compatible.
    """
    return tuple((v is None, v) for v in fact)


def null_safe_key(t: TPTuple) -> tuple:
    """``(F, Ts, Te)`` ordering that stays total for null-padded facts.

    Outer joins emit facts containing ``None``; wrapping every value as
    ``(is_null, value)`` sorts nulls after concrete values without ever
    comparing ``None`` against one.  On null-free facts the order
    coincides exactly with :func:`sort_comparison`'s plain key.
    """
    return (
        null_safe_fact_key(t.fact),
        t.interval.start,
        t.interval.end,
    )


def sort_comparison(tuples: Iterable[TPTuple]) -> list[TPTuple]:
    """Timsort by the ``(fact, Ts, Te)`` key — the default strategy."""
    return sorted(tuples, key=_full_key)


def sort_counting(tuples: Iterable[TPTuple]) -> list[TPTuple]:
    """Counting-based sort: group by fact, counting-sort starts per group.

    Linear in ``n + |ΩT|`` per fact group.  Facts themselves are ordered
    with a comparison sort, but the number of distinct facts is typically
    far below the number of tuples, so in the regimes the paper discusses
    (few facts, many intervals) the overall cost is effectively linear.
    Falls back gracefully for sparse domains: buckets are allocated only
    over each group's own start range.

    Buckets with more than one tuple — same fact *and* same start point,
    which only raw streams produce — are comparison-sorted by ``Te`` (a
    stable sort, preserving input order on full ties) so the output
    contract matches :func:`sort_comparison` exactly.
    """
    groups: dict[tuple, list[TPTuple]] = {}
    for t in tuples:
        groups.setdefault(t.fact, []).append(t)

    ordered: list[TPTuple] = []
    for fact in sorted(groups):
        group = groups[fact]
        lo = min(t.start for t in group)
        hi = max(t.start for t in group)
        width = hi - lo + 1
        if width > 4 * len(group) + 16:
            # Domain too sparse for dense buckets: comparison sort wins.
            group.sort(key=lambda t: (t.start, t.end))
            ordered.extend(group)
            continue
        buckets: list[list[TPTuple]] = [[] for _ in range(width)]
        for t in group:
            buckets[t.start - lo].append(t)
        for bucket in buckets:
            if len(bucket) > 1:
                # Raw (not-yet-deduplicated) streams can put several
                # same-fact tuples on one start point; break the tie the
                # same way the comparison strategy does.
                bucket.sort(key=lambda t: t.end)
            ordered.extend(bucket)
    return ordered


def sort_tuples(tuples: Iterable[TPTuple], *, strategy: str = "comparison") -> list[TPTuple]:
    """Sort by ``(fact, Ts)`` using the requested strategy."""
    if strategy == "comparison":
        return sort_comparison(tuples)
    if strategy == "counting":
        return sort_counting(tuples)
    raise ValueError(f"unknown sort strategy {strategy!r}")


def is_sorted(tuples: Sequence[TPTuple]) -> bool:
    """True iff the sequence is in the order this module's sorters emit.

    Uses the same full ``(fact, Ts, Te)`` key as :func:`sort_comparison`
    so a raw stream accepted by this predicate is exactly one the sorters
    would leave unchanged.  (On duplicate-free relations the ``Te``
    component is inert — ties on ``(fact, Ts)`` cannot occur.)
    """
    return all(
        _full_key(tuples[i]) <= _full_key(tuples[i + 1])
        for i in range(len(tuples) - 1)
    )
