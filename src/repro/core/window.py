"""The lineage-aware temporal window (paper, Section VI-A).

A lineage-aware temporal window has schema (F, winTs, winTe, λr, λs): a
fact, a candidate output interval ``[winTs, winTe)``, and the lineage
expressions of the tuples of the left (λr) and right (λs) input relations
that are valid throughout the window and carry fact F.  Duplicate-freeness
guarantees at most one such tuple per relation, so λr and λs are single
formulas (or ``None``, the paper's ``null``).

Recording the two sides separately is the key flexibility: a set operation
inspects (λr, λs) to decide whether the window yields an output tuple (the
λ-filter step) and, if so, combines them with the operation's Table-I
concatenation function — both in O(1), at window-creation time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..lineage.formula import Lineage
from .interval import Interval
from .schema import Fact

__all__ = ["LineageWindow"]


@dataclass(frozen=True, slots=True)
class LineageWindow:
    """One candidate output interval with the lineages valid over it."""

    fact: Fact
    win_ts: int
    win_te: int
    lam_r: Optional[Lineage]
    lam_s: Optional[Lineage]

    @property
    def interval(self) -> Interval:
        """The candidate interval ``[winTs, winTe)``."""
        return Interval(self.win_ts, self.win_te)

    def __str__(self) -> str:
        fact_text = ",".join(repr(v) for v in self.fact)
        lam_r = "null" if self.lam_r is None else str(self.lam_r)
        lam_s = "null" if self.lam_s is None else str(self.lam_s)
        return (
            f"({fact_text}, [{self.win_ts},{self.win_te}), λr={lam_r}, λs={lam_s})"
        )
