"""Columnar (NumPy) fast path for TP set operations.

The object-based LAWA sweep (:mod:`repro.core.lawa`) is the faithful
transliteration of the paper's Algorithm 1; this module is the
"production" execution engine a Python deployment would actually want:
it computes exactly the same lineage-aware windows, but in bulk with
NumPy, exploiting a structural property of duplicate-free relations:

    Within one fact group, a relation's tuples are disjoint and sorted,
    so for *any* candidate window start b the (unique) covering tuple is
    found by binary search: the tuple with the largest ``Ts ≤ b`` whose
    ``Te > b``.

The algorithm per fact group:

1. window boundaries = sorted union of all start/end points of both
   groups (``np.unique``) — consecutive boundaries delimit exactly the
   candidate windows LAWA would produce (possibly plus gap windows,
   which carry no valid tuple and are filtered with the λ-filter);
2. ``np.searchsorted`` maps every window start to the covering tuple
   index per relation (vectorized), with validity masks;
3. the per-operation filter is a boolean mask; only surviving windows
   materialize output tuples (lineage objects are built only for them).

Results are bit-identical to the reference implementation (property
tests in ``tests/test_columnar.py``); speedups grow with input size.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..lineage.concat import concat_and, concat_and_not, concat_or
from ..prob.valuation import probability
from .interval import Interval
from .relation import TPRelation
from .tuple import TPTuple

__all__ = [
    "columnar_union",
    "columnar_intersect",
    "columnar_except",
    "columnar_set_operation",
]


class _FactGroup:
    """Columnar view of one relation's tuples for a single fact."""

    __slots__ = ("starts", "ends", "tuples")

    def __init__(self, tuples: list[TPTuple]) -> None:
        tuples.sort(key=lambda t: t.interval.start)
        self.tuples = tuples
        self.starts = np.fromiter(
            (t.interval.start for t in tuples), dtype=np.int64, count=len(tuples)
        )
        self.ends = np.fromiter(
            (t.interval.end for t in tuples), dtype=np.int64, count=len(tuples)
        )

    def cover(self, window_starts: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(indices, valid_mask): the covering tuple per window start."""
        idx = np.searchsorted(self.starts, window_starts, side="right") - 1
        clamped = np.clip(idx, 0, len(self.tuples) - 1)
        valid = (idx >= 0) & (self.ends[clamped] > window_starts)
        return clamped, valid


def _group_by_fact(relation: TPRelation) -> dict:
    groups: dict = {}
    for t in relation:
        groups.setdefault(t.fact, []).append(t)
    return groups


def _windows_for_group(
    group_r: Optional[list[TPTuple]], group_s: Optional[list[TPTuple]]
):
    """Yield (ts, te, rt|None, st|None) for one fact's candidate windows."""
    cols_r = _FactGroup(group_r) if group_r else None
    cols_s = _FactGroup(group_s) if group_s else None

    point_arrays = []
    if cols_r is not None:
        point_arrays.extend((cols_r.starts, cols_r.ends))
    if cols_s is not None:
        point_arrays.extend((cols_s.starts, cols_s.ends))
    boundaries = np.unique(np.concatenate(point_arrays))
    window_starts = boundaries[:-1]
    window_ends = boundaries[1:]

    if cols_r is not None:
        idx_r, valid_r = cols_r.cover(window_starts)
    else:
        idx_r = valid_r = None
    if cols_s is not None:
        idx_s, valid_s = cols_s.cover(window_starts)
    else:
        idx_s = valid_s = None

    return (
        window_starts,
        window_ends,
        cols_r,
        idx_r,
        valid_r,
        cols_s,
        idx_s,
        valid_s,
    )


def _run(
    op: str,
    r: TPRelation,
    s: TPRelation,
    materialize: bool,
) -> TPRelation:
    r.schema.check_compatible(s.schema)
    groups_r = _group_by_fact(r)
    groups_s = _group_by_fact(s)
    if op == "intersect":
        facts = sorted(set(groups_r) & set(groups_s))
    elif op == "except":
        facts = sorted(groups_r)
    else:
        facts = sorted(set(groups_r) | set(groups_s))

    out: list[TPTuple] = []
    for fact in facts:
        group_r = groups_r.get(fact)
        group_s = groups_s.get(fact)
        (
            starts,
            ends,
            cols_r,
            idx_r,
            valid_r,
            cols_s,
            idx_s,
            valid_s,
        ) = _windows_for_group(group_r, group_s)

        none_mask = np.zeros(len(starts), dtype=bool)
        v_r = valid_r if valid_r is not None else none_mask
        v_s = valid_s if valid_s is not None else none_mask

        # The λ-filter as a boolean mask over all candidate windows.
        if op == "intersect":
            keep = v_r & v_s
        elif op == "except":
            keep = v_r
        else:
            keep = v_r | v_s

        for w in np.nonzero(keep)[0]:
            rt = cols_r.tuples[idx_r[w]] if v_r[w] else None  # type: ignore[index]
            st = cols_s.tuples[idx_s[w]] if v_s[w] else None  # type: ignore[index]
            interval = Interval(int(starts[w]), int(ends[w]))
            if op == "intersect":
                lineage = concat_and(rt.lineage, st.lineage)  # type: ignore[union-attr]
            elif op == "except":
                lineage = concat_and_not(
                    rt.lineage, st.lineage if st is not None else None  # type: ignore[union-attr]
                )
            else:
                lineage = concat_or(
                    rt.lineage if rt is not None else None,
                    st.lineage if st is not None else None,
                )
            out.append(TPTuple(fact, lineage, interval))

    events = {**r.events, **s.events}
    if materialize:
        out = [
            TPTuple(t.fact, t.lineage, t.interval, probability(t.lineage, events))
            for t in out
        ]
    symbol = {"union": "∪", "intersect": "∩", "except": "−"}[op]
    return TPRelation(
        f"({r.name} {symbol} {s.name})", r.schema, out, events, validate=False
    )


def columnar_union(
    r: TPRelation, s: TPRelation, *, materialize: bool = True
) -> TPRelation:
    """r ∪Tp s via the vectorized window computation."""
    return _run("union", r, s, materialize)


def columnar_intersect(
    r: TPRelation, s: TPRelation, *, materialize: bool = True
) -> TPRelation:
    """r ∩Tp s via the vectorized window computation."""
    return _run("intersect", r, s, materialize)


def columnar_except(
    r: TPRelation, s: TPRelation, *, materialize: bool = True
) -> TPRelation:
    """r −Tp s via the vectorized window computation."""
    return _run("except", r, s, materialize)


def columnar_set_operation(
    op: str, r: TPRelation, s: TPRelation, *, materialize: bool = True
) -> TPRelation:
    """Dispatch like :func:`repro.core.setops.tp_set_operation`."""
    if op not in ("union", "intersect", "except"):
        from .errors import UnsupportedOperationError

        raise UnsupportedOperationError(f"unknown TP set operation {op!r}")
    return _run(op, r, s, materialize)
