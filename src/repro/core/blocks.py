"""Columnar blocks: the packed-array layout of sorted tuple runs (DESIGN.md §15).

A :class:`ColumnarBlock` stores one ``(F, Ts)``-sorted run of TP tuples
as columns instead of objects:

* ``starts`` / ``ends`` — the interval end points, packed into
  ``array('q')`` (one machine int64 each, exposable as zero-copy
  ``memoryview`` buffers);
* ``fact_codes`` — an ``array('q')`` of indexes into ``facts``, the
  block's dictionary of *distinct* facts in first-appearance order.
  Because the run is sorted, first-appearance order **is** ascending
  ``fact_lt`` order, so comparing codes of one block is comparing facts;
* ``lineage_codes`` — an ``array('q')`` of indexes into ``lineages``,
  the distinct *interned* lineage objects of the run.  On the wire the
  lineage column is the PR 4 batch codec's node table
  (:func:`repro.lineage.serialize.encode_batch`), so a decoded block
  re-interns through the same constructor replay the parallel engine
  uses — identity equality survives transport;
* ``probs`` — the materialized marginals (``None`` where not yet
  valuated), kept as a plain tuple because it is never swept over.

The sweep kernels (:mod:`repro.exec.block_kernels`) run over the integer
columns alone and only touch ``facts``/``lineages`` when decoding emitted
windows; :class:`TPTuple` objects are constructed at the result boundary
only.  Two blocks are swept against each other through
:func:`unify_fact_codes`, which merges their (sorted, distinct) fact
dictionaries into one joint code space where ``==`` on codes is fact
equality and ``<`` is :func:`~repro.core.sorting.fact_lt`.

Time points must fit a signed 64-bit int — the only domain restriction
the columnar layout adds over the tuple path (the seams fall back to the
tuple kernels on overflow rather than fail).
"""

from __future__ import annotations

from array import array
from typing import Optional, Sequence

from ..lineage.formula import Lineage
from ..lineage.serialize import EncodedBatch, decode_batch, encode_batch
from .interval import Interval
from .schema import Fact
from .sorting import fact_lt
from .tuple import TPTuple

__all__ = ["ColumnarBlock", "unify_fact_codes"]

_new = object.__new__
_setattr = object.__setattr__

#: A block on the wire: (facts, fact codes, starts, ends, probs, lineage
#: node table + root indexes) — every field either a plain tuple or raw
#: little-endian int64 bytes, so pickling runs at C speed.
WireBlock = tuple


class ColumnarBlock:
    """One sorted tuple run in columnar form.  See the module docstring."""

    __slots__ = ("facts", "fact_codes", "starts", "ends", "lineages", "lineage_codes", "probs")

    facts: list[Fact]
    fact_codes: "array[int]"
    starts: "array[int]"
    ends: "array[int]"
    lineages: list[Lineage]
    lineage_codes: "array[int]"
    probs: tuple[Optional[float], ...]

    def __init__(
        self,
        facts: list[Fact],
        fact_codes: "array[int]",
        starts: "array[int]",
        ends: "array[int]",
        lineages: list[Lineage],
        lineage_codes: "array[int]",
        probs: tuple[Optional[float], ...],
    ) -> None:
        self.facts = facts
        self.fact_codes = fact_codes
        self.starts = starts
        self.ends = ends
        self.lineages = lineages
        self.lineage_codes = lineage_codes
        self.probs = probs

    @classmethod
    def from_tuples(cls, tuples: Sequence[TPTuple]) -> "ColumnarBlock":
        """Encode a ``(F, Ts)``-sorted run into columns.

        Raises ``OverflowError`` when a time point does not fit int64;
        callers that cannot rule that out catch it and stay on the
        tuple path.
        """
        n = len(tuples)
        facts: list[Fact] = []
        fact_index: dict[Fact, int] = {}
        lineages: list[Lineage] = []
        lineage_index: dict[Lineage, int] = {}
        fact_codes = array("q", bytes(8 * n))
        lineage_codes = array("q", bytes(8 * n))
        starts = array("q", bytes(8 * n))
        ends = array("q", bytes(8 * n))
        probs: list[Optional[float]] = [None] * n
        for i, t in enumerate(tuples):
            fact = t.fact
            code = fact_index.get(fact)
            if code is None:
                code = fact_index[fact] = len(facts)
                facts.append(fact)
            fact_codes[i] = code
            lam = t.lineage
            code = lineage_index.get(lam)
            if code is None:
                code = lineage_index[lam] = len(lineages)
                lineages.append(lam)
            lineage_codes[i] = code
            interval = t.interval
            starts[i] = interval.start
            ends[i] = interval.end
            probs[i] = t.p
        return cls(facts, fact_codes, starts, ends, lineages, lineage_codes, tuple(probs))

    def __len__(self) -> int:
        return len(self.starts)

    # ------------------------------------------------------------------
    # zero-copy column access
    # ------------------------------------------------------------------
    def interval_views(self) -> tuple[memoryview, memoryview]:
        """``(starts, ends)`` as read-only int64 memoryviews."""
        return memoryview(self.starts).toreadonly(), memoryview(self.ends).toreadonly()

    # ------------------------------------------------------------------
    # result-boundary reconstruction
    # ------------------------------------------------------------------
    def tuples(self) -> list[TPTuple]:
        """Rebuild the run — field-identical to the encoded tuples, with
        lineage `is`-identical (the column holds the interned objects)."""
        facts = self.facts
        lineages = self.lineages
        fact_codes = self.fact_codes
        lineage_codes = self.lineage_codes
        starts = self.starts
        ends = self.ends
        probs = self.probs
        out: list[TPTuple] = []
        append = out.append
        new, set_, interval_cls, tuple_cls = _new, _setattr, Interval, TPTuple
        for i in range(len(starts)):
            interval = new(interval_cls)
            set_(interval, "start", starts[i])
            set_(interval, "end", ends[i])
            t = new(tuple_cls)
            set_(t, "fact", facts[fact_codes[i]])
            set_(t, "lineage", lineages[lineage_codes[i]])
            set_(t, "interval", interval)
            set_(t, "p", probs[i])
            append(t)
        return out

    # ------------------------------------------------------------------
    # wire / spill form
    # ------------------------------------------------------------------
    def encode(self) -> WireBlock:
        """The block as plain tuples, bytes and the PR 4 lineage table."""
        encoded: EncodedBatch = encode_batch(self.lineages)
        return (
            tuple(self.facts),
            self.fact_codes.tobytes(),
            self.starts.tobytes(),
            self.ends.tobytes(),
            tuple(self.lineage_codes),
            self.probs,
            encoded,
        )

    @classmethod
    def decode(cls, wire: WireBlock) -> "ColumnarBlock":
        """Inverse of :meth:`encode`; re-interns the lineage column."""
        facts, fact_bytes, start_bytes, end_bytes, lineage_codes, probs, encoded = wire
        fact_codes = array("q")
        fact_codes.frombytes(fact_bytes)
        starts = array("q")
        starts.frombytes(start_bytes)
        ends = array("q")
        ends.frombytes(end_bytes)
        nodes, roots = encoded
        lineages = decode_batch(nodes, roots)
        return cls(
            list(facts),
            fact_codes,
            starts,
            ends,
            lineages,
            array("q", lineage_codes),
            tuple(probs),
        )


def unify_fact_codes(
    facts_r: Sequence[Fact], facts_s: Sequence[Fact]
) -> tuple[list[int], list[int]]:
    """Merge two sorted distinct-fact dictionaries into one code space.

    Returns per-side translation tables ``(map_r, map_s)`` assigning each
    local fact code a joint code such that, across both blocks, joint
    codes are equal iff the facts are equal and ``<`` iff
    :func:`fact_lt` — the two predicates the LAWA sweep asks of facts.
    The merge runs once per *distinct* fact; every per-row comparison in
    the sweep afterwards is machine-int.
    """
    nr, ns = len(facts_r), len(facts_s)
    map_r = [0] * nr
    map_s = [0] * ns
    i = j = code = 0
    while i < nr and j < ns:
        fr, fs = facts_r[i], facts_s[j]
        if fr == fs:
            map_r[i] = map_s[j] = code
            i += 1
            j += 1
        elif fact_lt(fr, fs):
            map_r[i] = code
            i += 1
        else:
            map_s[j] = code
            j += 1
        code += 1
    while i < nr:
        map_r[i] = code
        i += 1
        code += 1
    while j < ns:
        map_s[j] = code
        j += 1
        code += 1
    return map_r, map_s
