"""Generalized lineage-aware temporal windows (outer & anti joins).

The follow-up paper *Generalized Lineage-Aware Temporal Windows*
(Papaioannou et al., arXiv:1902.04379) extends the LAWA window machinery
of the base paper from set operations to outer and anti joins.  The key
generalization: a window no longer pairs *the* left tuple with *the*
right tuple of one fact (duplicate-freeness guarantees at most one each),
but pairs one tuple of a **preserved side** with the *set* of join-key
matching tuples of the other side that are valid throughout the window.

Two window shapes cover the whole workload class:

* :class:`MatchWindow` — the maximal interval over which a concrete
  (left, right) pair of key-matching tuples is valid together.  Inner
  and outer joins turn these into matched output tuples with lineage
  ``λl ∧ λr``.
* :class:`PreservedWindow` — a maximal subinterval of one tuple of the
  preserved side over which the *set* of valid matching tuples on the
  other side is constant.  Outer joins turn these into null-padded
  output tuples, anti joins into plain ones; both concatenate the
  negated disjunction of the other side's lineages:
  ``λp ∧ ¬(λo₁ ∨ … ∨ λoₖ)`` (plain ``λp`` when the set is empty).

Which shapes a sweep emits is parameterized by :class:`WindowPolicy` —
the "which side's lineage survives" knob of the generalized paper:
matches only (inner join), matches plus one preserved side (left/right
outer join), matches plus both (full outer join), or one preserved side
alone (anti join).

The sweep processes one join-key group (where arbitrary many tuples per
side may be valid concurrently — duplicate-freeness only constrains equal
*facts*) in a single pass over its 2·(nl + nr) interval endpoints,
following the journal formulation's corrected termination rule: a
preserved tuple closes its final window at its own end point even when
the other side is already exhausted.  Per event the work is linear in the
number of concurrently valid tuples, so the total cost is
O(n log n + output) per group.

``tests/test_join_generalized.py`` pins the windows (via the join
operators built on them) against an independent naive sweepline baseline
and against brute-force possible-worlds enumeration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence, Union

from ..lineage.formula import Lineage
from .tuple import TPTuple

__all__ = [
    "LEFT",
    "RIGHT",
    "MatchWindow",
    "PreservedWindow",
    "GeneralizedWindow",
    "WindowPolicy",
    "WINDOW_POLICIES",
    "generalized_windows",
]

#: Side markers of a :class:`PreservedWindow`.
LEFT, RIGHT = 0, 1


@dataclass(frozen=True, slots=True)
class MatchWindow:
    """Maximal interval over which one key-matching pair is valid together."""

    left: TPTuple
    right: TPTuple
    win_ts: int
    win_te: int


@dataclass(frozen=True, slots=True)
class PreservedWindow:
    """Maximal subinterval of a preserved tuple with a constant match set.

    ``others`` holds the lineages of the other side's key-matching tuples
    valid throughout ``[win_ts, win_te)``, in the canonical order of the
    other side's input sequence (the ``(F, Ts)`` relation order) — the
    order in which the join operators build the negated disjunction, so
    both implementations produce syntactically identical lineage.
    """

    side: int  # LEFT or RIGHT
    tuple: TPTuple
    win_ts: int
    win_te: int
    others: tuple[Lineage, ...]


GeneralizedWindow = Union[MatchWindow, PreservedWindow]


@dataclass(frozen=True, slots=True)
class WindowPolicy:
    """Which windows a generalized sweep emits — the survival parameter."""

    matches: bool
    preserve_left: bool
    preserve_right: bool


#: The canonical policies of the generalized-windows paper, by join kind.
WINDOW_POLICIES: dict[str, WindowPolicy] = {
    "inner": WindowPolicy(matches=True, preserve_left=False, preserve_right=False),
    "left_outer": WindowPolicy(matches=True, preserve_left=True, preserve_right=False),
    "right_outer": WindowPolicy(matches=True, preserve_left=False, preserve_right=True),
    "full_outer": WindowPolicy(matches=True, preserve_left=True, preserve_right=True),
    "anti": WindowPolicy(matches=False, preserve_left=True, preserve_right=False),
}


def generalized_windows(
    left: Sequence[TPTuple],
    right: Sequence[TPTuple],
    policy: WindowPolicy,
) -> Iterator[GeneralizedWindow]:
    """Sweep one join-key group and emit its generalized windows.

    ``left`` and ``right`` are the group's tuples in their relations'
    ``(F, Ts)`` order; that order defines the canonical indices used for
    the ``others`` snapshots.  The sweep walks the endpoint events once,
    in time order with end events before start events at equal time
    (half-open intervals do not touch):

    * any event on side X closes the current window of every valid
      preserved tuple of the *other* side (its match set changes at X's
      boundary) — snapshots are taken before the event is applied;
    * a preserved tuple's own end closes its final window (corrected
      termination: the other side being exhausted does not truncate it);
    * a starting tuple opens match windows against every tuple currently
      valid on the other side, ``[t, min(ends))`` each.
    """
    events: list[tuple[int, int, int, int]] = []  # (time, phase, side, idx)
    for idx, u in enumerate(left):
        events.append((u.interval.start, 1, LEFT, idx))
        events.append((u.interval.end, 0, LEFT, idx))
    for idx, u in enumerate(right):
        events.append((u.interval.start, 1, RIGHT, idx))
        events.append((u.interval.end, 0, RIGHT, idx))
    # Ends (phase 0) before starts (phase 1) at equal time.
    events.sort(key=lambda e: (e[0], e[1]))

    tuples = (left, right)
    preserve = (policy.preserve_left, policy.preserve_right)
    matches = policy.matches
    active: tuple[dict[int, TPTuple], dict[int, TPTuple]] = ({}, {})
    seg_start: tuple[dict[int, int], dict[int, int]] = ({}, {})

    i, n = 0, len(events)
    while i < n:
        t = events[i][0]
        j = i
        while j < n and events[j][0] == t:
            j += 1
        group = events[i:j]
        sides_here = {e[2] for e in group}

        # 1. Close preserved windows, snapshotting pre-event state.
        for side in (LEFT, RIGHT):
            if not preserve[side]:
                continue
            other = 1 - side
            if other in sides_here:
                # The match set of every valid preserved tuple changes.
                to_close = list(seg_start[side])
            else:
                # Only tuples ending here close (their final window).
                to_close = [
                    idx
                    for (_, phase, sd, idx) in group
                    if sd == side and phase == 0 and idx in seg_start[side]
                ]
            if not to_close:
                continue
            other_active = active[other]
            others = tuple(other_active[k].lineage for k in sorted(other_active))
            starts = seg_start[side]
            for idx in to_close:
                if t > starts[idx]:
                    yield PreservedWindow(side, tuples[side][idx], starts[idx], t, others)
                starts[idx] = t

        # 2. Apply end events.
        for (_, phase, side, idx) in group:
            if phase == 0:
                active[side].pop(idx, None)
                seg_start[side].pop(idx, None)

        # 3. Apply start events; pair each starter with the (updated)
        #    other-side active set, so same-time cross starts pair once.
        for (_, phase, side, idx) in group:
            if phase != 1:
                continue
            u = tuples[side][idx]
            if matches:
                # Emission order across pairs is irrelevant (the join
                # driver re-sorts); no need to order the active set.
                u_end = u.interval.end
                for v in active[1 - side].values():
                    v_end = v.interval.end
                    te = u_end if u_end < v_end else v_end
                    if side == LEFT:
                        yield MatchWindow(u, v, t, te)
                    else:
                        yield MatchWindow(v, u, t, te)
            active[side][idx] = u
            if preserve[side]:
                seg_start[side][idx] = t

        i = j
