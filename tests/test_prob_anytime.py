"""Tests for the anytime probability approximation."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.lineage import Var, land, lnot, lor
from repro.prob import probability_anytime, probability_shannon

a, b, c, d = Var("a"), Var("b"), Var("c"), Var("d")
PROBS = {"a": 0.3, "b": 0.6, "c": 0.5, "d": 0.8}


@st.composite
def formulas(draw, depth: int = 3):
    pool = st.sampled_from([a, b, c, d])
    if depth == 0:
        return draw(pool)
    kind = draw(st.integers(0, 3))
    if kind == 0:
        return draw(pool)
    if kind == 1:
        return lnot(draw(formulas(depth=depth - 1)))
    left = draw(formulas(depth=depth - 1))
    right = draw(formulas(depth=depth - 1))
    return land(left, right) if kind == 2 else lor(left, right)


class TestAnytime:
    def test_1of_is_immediately_exact(self):
        result = probability_anytime(a & ~b, PROBS)
        assert result.exact
        assert result.expansions == 0
        assert result.low == result.high == pytest.approx(0.3 * 0.4)

    def test_converges_to_exact(self):
        formula = (a & b) | (a & c) | (~a & d)
        result = probability_anytime(formula, PROBS, epsilon=0.0)
        exact = probability_shannon(formula, PROBS)
        assert result.exact
        assert result.low == pytest.approx(exact)
        assert result.high == pytest.approx(exact)

    def test_budget_limits_expansions(self):
        formula = (a & b) | (a & c) | (b & d) | (c & d)
        result = probability_anytime(
            formula, PROBS, epsilon=0.0, max_expansions=1
        )
        assert result.expansions <= 1
        exact = probability_shannon(formula, PROBS)
        assert result.low - 1e-12 <= exact <= result.high + 1e-12

    @given(formulas())
    def test_bounds_always_sound(self, formula):
        exact = probability_shannon(formula, PROBS)
        for budget in (0, 1, 3, 100):
            result = probability_anytime(
                formula, PROBS, epsilon=0.0, max_expansions=budget
            )
            assert result.low - 1e-9 <= exact <= result.high + 1e-9
            assert result.gap >= -1e-12

    @given(formulas())
    def test_bounds_tighten_monotonically(self, formula):
        widths = []
        for budget in (0, 1, 2, 4, 8):
            result = probability_anytime(
                formula, PROBS, epsilon=0.0, max_expansions=budget
            )
            widths.append(result.gap)
        for earlier, later in zip(widths, widths[1:]):
            assert later <= earlier + 1e-9

    def test_epsilon_early_stop(self):
        formula = (a & b) | (a & c) | (b & d)
        loose = probability_anytime(formula, PROBS, epsilon=0.5)
        tight = probability_anytime(formula, PROBS, epsilon=1e-9)
        assert loose.expansions <= tight.expansions
        assert tight.gap <= 1e-9

    def test_midpoint_within_bounds(self):
        formula = (a & b) | (c & d) | (a & d)
        result = probability_anytime(formula, PROBS, max_expansions=2, epsilon=0.0)
        assert result.low <= result.midpoint <= result.high

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ValueError):
            probability_anytime(a, PROBS, epsilon=-1.0)
