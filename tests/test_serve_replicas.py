"""Replica-tier stress: forked readers vs. the serial oracle (DESIGN.md §16).

The tentpole's acceptance bar is PR 8's, now with processes dying: with
reader connections routed round-robin across 2 forked replicas while a
``delta_storm`` commit stream runs on the writer, every wire response —
relation payload, lineage text and probabilities included — must be
bit-identical to a serial oracle that replays exactly that reader's
pinned prefix.  And it must stay that way while a replica is SIGKILL'd
mid-stream: the in-flight request falls back to the writer, a fresh
replica is forked, and no client ever sees the failure.

The in-process tests pin the pieces individually: the shipping codec
round-trips change sets losslessly (canonical lineage text preserved),
``route_read`` keeps written sessions / EXPLAIN / unroutable reads on
the writer, and a killed :class:`ReplicaSet` member raises
:class:`ReplicaUnavailable` promptly and respawns cleanly.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import time
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.workloads import build_scenario, scenario_catalog
from repro.db import TPDatabase
from repro.serve import QueryService
from repro.serve.protocol import relation_payload
from repro.serve.replica import (
    ReplicaSet,
    ReplicaUnavailable,
    decode_changeset,
    encode_changeset,
)
from repro.serve.server import ServeServer

#: delta_storm, shrunk to test size (mirrors test_serve_server._SPEC).
_SPEC = replace(
    scenario_catalog()["delta_storm"],
    n_tuples=120,
    n_facts=8,
    n_batches=5,
    batch_fraction=0.05,
)


class _Client:
    """A minimal NDJSON client over an asyncio stream pair."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self.reader = reader
        self.writer = writer
        self.hello: dict = {}

    @classmethod
    async def connect(cls, port: int) -> "_Client":
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        client = cls(reader, writer)
        client.hello = json.loads(await reader.readline())
        assert client.hello["ok"] and client.hello["hello"]
        return client

    async def request(self, **payload) -> dict:
        self.writer.write(json.dumps(payload).encode() + b"\n")
        await self.writer.drain()
        line = await self.reader.readline()
        assert line, "server closed the connection mid-request"
        return json.loads(line)

    async def close(self) -> None:
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


def _build_db(scenario) -> TPDatabase:
    db = TPDatabase()
    for relation in scenario.relations.values():
        db.register(relation)
    for name in scenario.relations:
        db.store(name)
    return db


def _oracle_payload(scenario, upto: int, query: str) -> dict:
    """Serial replay → the exact wire payload the server must produce."""
    db = _build_db(scenario)
    for target, delta in scenario.deltas[:upto]:
        db.apply(target, inserts=delta.inserts, deletes=delta.deletes)
    payload = relation_payload(db.query(query, optimize="safe"))
    return json.loads(json.dumps(payload))  # same float/list shapes as the wire


# ----------------------------------------------------------------------
# the shipping codec
# ----------------------------------------------------------------------
def test_changeset_codec_round_trips_losslessly():
    scenario = build_scenario(_SPEC, scale=1.0, seed=11)
    db = _build_db(scenario)
    for target, delta in scenario.deltas:
        committed = db.apply(target, inserts=delta.inserts, deletes=delta.deletes)
        if not committed:
            continue
        decoded = decode_changeset(encode_changeset(committed))
        assert decoded.epoch == committed.epoch
        assert decoded.counter == committed.counter
        assert decoded.events == committed.events
        assert decoded.removed_events == tuple(committed.removed_events)
        for mine, theirs in zip(
            decoded.inserted + decoded.deleted,
            committed.inserted + committed.deleted,
        ):
            assert mine.fact == theirs.fact
            assert (mine.start, mine.end, mine.p) == (
                theirs.start,
                theirs.end,
                theirs.p,
            )
            assert str(mine.lineage) == str(theirs.lineage)


# ----------------------------------------------------------------------
# routing decisions
# ----------------------------------------------------------------------
def test_route_read_keeps_ineligible_reads_on_the_writer():
    db = TPDatabase()
    db.create_relation("a", ("product",), [("milk", 2, 10, 0.3)])
    db.create_relation("b", ("product",), [("milk", 5, 12, 0.5)])
    service = QueryService(db)
    reader = service.open_session()

    ticket = service.route_read(reader, "a | b", optimize="safe")
    assert ticket is not None
    text, level, parts = ticket
    assert text == "a | b" and level == "safe"
    assert [name for name, _ in parts] == ["a", "b"]

    # EXPLAIN runs the writer's full report path.
    assert service.route_read(reader, "EXPLAIN a | b", optimize="safe") is None
    # A broken query surfaces the writer's canonical parse error.
    assert service.route_read(reader, "a |", optimize="safe") is None
    # Unknown names surface the writer's canonical UnknownRelationError.
    assert service.route_read(reader, "nope | nope") is None
    # A written session must read its own writes: pinned to the writer.
    service.commit(reader, "a", inserts=[("beer", 3, 8, 0.5)])
    assert service.route_read(reader, "a | b", optimize="safe") is None
    # A fresh (unwritten) session routes again.
    fresh = service.open_session()
    assert service.route_read(fresh, "a | b", optimize="safe") is not None


# ----------------------------------------------------------------------
# in-process replica set: answers, caching, death, respawn
# ----------------------------------------------------------------------
def test_replica_answers_bit_identical_and_caches():
    db = TPDatabase()
    db.create_relation("a", ("product",), [("milk", 2, 10, 0.3)])
    db.create_relation("b", ("product",), [("milk", 5, 12, 0.5)])
    db.store("a")
    db.store("b")
    service = QueryService(db)
    replicas = ReplicaSet(db, 2)
    replicas.start()
    try:
        reader = service.open_session()
        ticket = service.route_read(reader, "a | b", optimize="safe")
        assert ticket is not None
        expected = relation_payload(
            service.execute(reader, "a | b", optimize="safe").relation
        )
        for index in range(2):
            cold = replicas.query(index, ticket)
            assert cold["cached"] is False
            assert cold["relation"] == expected
            hot = replicas.query(index, ticket)
            assert hot["cached"] is True
            assert hot["relation"] == expected

        # A commit fans out; a session pinned after it reads the new epoch
        # from the replica, bit-identically to the writer.
        changeset = service.commit(reader, "a", inserts=[("beer", 3, 8, 0.5)])
        replicas.fan_out_commit("a", changeset, tuple(service.live_parts()))
        fresh = service.open_session()
        ticket2 = service.route_read(fresh, "a | b", optimize="safe")
        assert ticket2 is not None and ticket2 != ticket
        expected2 = relation_payload(
            service.execute(fresh, "a | b", optimize="safe").relation
        )
        assert replicas.query(0, ticket2)["relation"] == expected2
        # The old session's pinned (historical) epoch still answers — the
        # replica reconstructs it from its ingested log.
        old = replicas.query(1, ticket)
        assert old["relation"] == expected
    finally:
        replicas.stop()


def test_sigkilled_replica_is_detected_and_respawned():
    db = TPDatabase()
    db.create_relation("a", ("product",), [("milk", 2, 10, 0.3)])
    db.store("a")
    service = QueryService(db)
    replicas = ReplicaSet(db, 1)
    replicas.start()
    try:
        reader = service.open_session()
        ticket = service.route_read(reader, "a | a", optimize="safe")
        assert ticket is not None
        assert replicas.query(0, ticket)["ok"] is True

        victim = replicas.pids()[0]
        os.kill(victim, signal.SIGKILL)
        start = time.monotonic()
        with pytest.raises(ReplicaUnavailable):
            replicas.query(0, ticket)
        assert time.monotonic() - start < 10.0  # watchdog, not timeout

        replicas.respawn(0)
        assert replicas.stats()["respawns"] == 1
        replacement = replicas.pids()[0]
        assert replacement != victim
        expected = relation_payload(
            service.execute(reader, "a | a", optimize="safe").relation
        )
        assert replicas.query(0, ticket)["relation"] == expected
        # Respawn is idempotent on a live slot: no double fork.
        replicas.respawn(0)
        assert replicas.stats()["respawns"] == 1
    finally:
        replicas.stop()


def test_replica_forked_over_a_live_exec_pool_exits_cleanly():
    """A replica inherits the parent's pool registry; it must not reap it.

    The fork copies ``_POOLS``, but those workers are the *parent's*
    children: the replica's shutdown used to terminate them (killing the
    parent's live pool out from under it) and then crash on
    ``join`` — the child exited with a traceback instead of 0.  The
    replica now forgets inherited pools on startup, so the parent's
    workers survive and the child's exit is clean.
    """
    from repro.exec import pool as pool_mod

    pool_mod.get_pool(2)
    parent_workers = pool_mod.pool_worker_pids()
    assert len(parent_workers) == 2

    db = TPDatabase()
    db.create_relation("a", ("product",), [("milk", 2, 10, 0.3)])
    db.store("a")
    service = QueryService(db)
    replicas = ReplicaSet(db, 1)
    replicas.start()
    try:
        reader = service.open_session()
        ticket = service.route_read(reader, "a | a", optimize="safe")
        assert ticket is not None
        assert replicas.query(0, ticket)["ok"] is True
        process = replicas._handles[0].process
    finally:
        replicas.stop()

    try:
        assert process.exitcode == 0, "replica shutdown must be clean"
        # stop() joined the child, so any terminate() it had issued
        # would already be delivered: the parent's workers must still
        # be running.
        assert sorted(pool_mod.pool_worker_pids()) == sorted(parent_workers)
    finally:
        pool_mod.shutdown_pools()


# ----------------------------------------------------------------------
# wire-level stress: many clients, 2 replicas, vs. the serial oracle
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [7, 345])
def test_replicated_responses_bit_identical_to_serial_oracle(seed):
    scenario = build_scenario(_SPEC, scale=1.0, seed=seed)
    queries = scenario.queries + ("r1 | r2",)
    oracle: dict[tuple[int, str], dict] = {}

    def expected(upto: int, query: str) -> dict:
        key = (upto, query)
        if key not in oracle:
            oracle[key] = _oracle_payload(scenario, upto, query)
        return oracle[key]

    async def main() -> None:
        server = ServeServer(_build_db(scenario), replicas=2)
        _, port = await server.start()
        try:
            writer = await _Client.connect(port)
            readers = [(await _Client.connect(port), 0) for _ in range(2)]

            async def check(client: _Client, upto: int, query: str) -> None:
                response = await client.request(op="query", q=query, optimize="safe")
                assert response["ok"], response
                assert response["relation"] == expected(upto, query), (
                    f"reader pinned after batch {upto} diverged on {query!r}"
                )

            for index, (target, delta) in enumerate(scenario.deltas):
                response = await writer.request(
                    op="commit",
                    relation=target,
                    inserts=[list(row) for row in delta.inserts],
                    deletes=[list(row) for row in delta.deletes],
                )
                assert response["ok"], response
                readers.append((await _Client.connect(port), index + 1))
                await asyncio.gather(
                    *(check(client, upto, queries[0]) for client, upto in readers)
                )

            async def sweep(client: _Client, upto: int) -> None:
                for query in queries:
                    await check(client, upto, query)

            await asyncio.gather(*(sweep(client, upto) for client, upto in readers))
            await check(writer, len(scenario.deltas), queries[0])

            stats = await writer.request(op="stats")
            replica_stats = stats["stats"]["replicas"]
            assert replica_stats["count"] == 2
            assert len(replica_stats["pids"]) == 2
            assert replica_stats["respawns"] == 0, (
                "no replica should have died in the clean run"
            )
            for client, _ in readers:
                await client.close()
            await writer.close()
        finally:
            await server.aclose()

    asyncio.run(main())


def test_replica_sigkill_mid_stream_never_surfaces_to_clients():
    """SIGKILL a replica between (and during) reads: every response stays
    bit-identical to the oracle, and a fresh replica appears."""
    scenario = build_scenario(_SPEC, scale=1.0, seed=99)
    query = scenario.queries[0]
    oracle: dict[int, dict] = {}

    def expected(upto: int) -> dict:
        if upto not in oracle:
            oracle[upto] = _oracle_payload(scenario, upto, query)
        return oracle[upto]

    async def main() -> None:
        server = ServeServer(_build_db(scenario), replicas=2)
        _, port = await server.start()
        try:
            writer = await _Client.connect(port)
            readers = [(await _Client.connect(port), 0) for _ in range(3)]

            async def check(client: _Client, upto: int) -> None:
                response = await client.request(op="query", q=query, optimize="safe")
                assert response["ok"], response
                assert response["relation"] == expected(upto), (
                    f"reader pinned after batch {upto} diverged after the kill"
                )

            stats = await writer.request(op="stats")
            victims = stats["stats"]["replicas"]["pids"]
            assert len(victims) == 2

            loop = asyncio.get_running_loop()
            for index, (target, delta) in enumerate(scenario.deltas):
                response = await writer.request(
                    op="commit",
                    relation=target,
                    inserts=[list(row) for row in delta.inserts],
                    deletes=[list(row) for row in delta.deletes],
                )
                assert response["ok"], response
                readers.append((await _Client.connect(port), index + 1))
                if index == 1:
                    # Land the SIGKILL while the reader requests below are
                    # in flight: the victim's in-flight request must be
                    # retried on the writer, invisibly.
                    loop.call_later(0.005, os.kill, victims[0], signal.SIGKILL)
                await asyncio.gather(
                    *(check(client, upto) for client, upto in readers)
                )

            # The failure healed: two live replicas again, at least one
            # respawn, and every reader (old pins included) still answers
            # bit-identically.  The respawn is asynchronous — poll briefly.
            deadline = time.monotonic() + 30.0
            while True:
                stats = await writer.request(op="stats")
                replica_stats = stats["stats"]["replicas"]
                if (
                    replica_stats["respawns"] >= 1
                    and len(replica_stats["pids"]) == 2
                ):
                    break
                assert time.monotonic() < deadline, (
                    f"replica never respawned: {replica_stats}"
                )
                await asyncio.sleep(0.05)
            assert victims[0] not in replica_stats["pids"]
            await asyncio.gather(
                *(check(client, upto) for client, upto in readers)
            )
            for client, _ in readers:
                await client.close()
            await writer.close()
        finally:
            await server.aclose()

    asyncio.run(main())


# ----------------------------------------------------------------------
# hypothesis: staggered readers across replicas vs. the writer
# ----------------------------------------------------------------------
@settings(max_examples=5, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    open_after=st.lists(st.integers(0, 5), min_size=2, max_size=3),
)
def test_staggered_readers_across_replicas_match_the_writer(seed, open_after):
    """Property: for every staggered reader schedule, a replica's answer
    to a routed ticket equals the writer's own execution, byte for byte,
    at every point of the commit stream."""
    scenario = build_scenario(_SPEC, scale=1.0, seed=seed)
    query = scenario.queries[0]
    db = _build_db(scenario)
    service = QueryService(db)
    replicas = ReplicaSet(db, 2)
    replicas.start()
    try:
        writer = service.open_session()
        n_batches = len(scenario.deltas)
        schedule = sorted(min(point, n_batches) for point in open_after)
        readers: list[int] = []

        def check_all() -> None:
            for i, session_id in enumerate(readers):
                ticket = service.route_read(session_id, query, optimize="safe")
                assert ticket is not None, "read-only session must route"
                via_replica = replicas.query(i, ticket)
                via_writer = relation_payload(
                    service.execute(session_id, query, optimize="safe").relation
                )
                assert via_replica["relation"] == via_writer, (
                    f"reader {i} diverged from the writer"
                )

        pending = list(schedule)
        while pending and pending[0] == 0:
            pending.pop(0)
            readers.append(service.open_session())
        check_all()
        for applied, (target, delta) in enumerate(scenario.deltas, start=1):
            changeset = service.commit(
                writer, target, inserts=delta.inserts, deletes=delta.deletes
            )
            if changeset:
                replicas.fan_out_commit(
                    target, changeset, tuple(service.live_parts())
                )
            while pending and pending[0] == applied:
                pending.pop(0)
                readers.append(service.open_session())
            check_all()
    finally:
        replicas.stop()
