"""Tests specific to the NORM baseline (normalization operator)."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings

from repro import TPRelation
from repro.baselines.norm import NormAlgorithm, normalize

from .strategies import tp_relation_pair

relaxed = settings(
    max_examples=50, suppress_health_check=[HealthCheck.too_slow], deadline=None
)


class TestNormalize:
    def test_splits_at_overlapping_boundaries(self):
        r = TPRelation.from_rows("r", ("x",), [("f", 1, 10, 0.5)])
        s = TPRelation.from_rows(
            "s", ("x",), [("f", 2, 3, 0.5), ("f", 5, 6, 0.5)]
        )
        pieces = normalize(r, s)
        assert [(p.start, p.end) for p in pieces] == [
            (1, 2),
            (2, 3),
            (3, 5),
            (5, 6),
            (6, 10),
        ]
        assert all(str(p.lineage) == "r1" for p in pieces)

    def test_ignores_other_facts(self):
        r = TPRelation.from_rows("r", ("x",), [("f", 1, 10, 0.5)])
        s = TPRelation.from_rows("s", ("x",), [("g", 2, 3, 0.5)])
        pieces = normalize(r, s)
        assert [(p.start, p.end) for p in pieces] == [(1, 10)]

    def test_boundary_on_edge_not_split(self):
        r = TPRelation.from_rows("r", ("x",), [("f", 2, 6, 0.5)])
        s = TPRelation.from_rows("s", ("x",), [("f", 2, 6, 0.5)])
        pieces = normalize(r, s)
        assert [(p.start, p.end) for p in pieces] == [(2, 6)]

    def test_not_symmetric(self):
        r = TPRelation.from_rows("r", ("x",), [("f", 1, 10, 0.5)])
        s = TPRelation.from_rows("s", ("x",), [("f", 4, 6, 0.5)])
        assert len(normalize(r, s)) == 3  # r split by s
        assert len(normalize(s, r)) == 1  # s inside r: no interior cut

    @relaxed
    @given(pair=tp_relation_pair())
    def test_pieces_partition_originals(self, pair):
        """Normalization replicates tuples: pieces tile each original."""
        r, s = pair
        pieces = normalize(r, s)
        by_lineage: dict = {}
        for piece in pieces:
            by_lineage.setdefault(piece.lineage, []).append(piece.interval)
        originals = {t.lineage: t.interval for t in r}
        assert set(by_lineage) == set(originals)
        for lineage, intervals in by_lineage.items():
            intervals.sort(key=lambda iv: iv.start)
            original = originals[lineage]
            assert intervals[0].start == original.start
            assert intervals[-1].end == original.end
            for left, right in zip(intervals, intervals[1:]):
                assert left.end == right.start  # contiguous tiling

    @relaxed
    @given(pair=tp_relation_pair())
    def test_alignment_property(self, pair):
        """After mutual normalization, same-fact pieces are equal or disjoint."""
        r, s = pair
        pieces_r = normalize(r, s)
        pieces_s = normalize(s, r)
        for pr in pieces_r:
            for ps in pieces_s:
                if pr.fact != ps.fact:
                    continue
                assert (
                    pr.interval == ps.interval
                    or not pr.interval.overlaps(ps.interval)
                ), f"misaligned pieces {pr.interval} vs {ps.interval}"


class TestNormEndToEnd:
    def test_paper_query(self, rel_a, rel_b, rel_c):
        """Fig. 1's full query evaluated entirely with NORM operators."""
        norm = NormAlgorithm()
        union = norm.compute("union", rel_a, rel_b)
        result = norm.compute("except", rel_c, union)
        rows = {
            (t.fact, str(t.lineage), t.start, t.end, round(t.p, 6)) for t in result
        }
        assert (("milk",), "c2∧¬(a1∨b1)", 6, 8, 0.196) in rows
        assert len(rows) == 5
