"""Tests for sorting strategies, the timeslice operator, and coalescing."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro import Interval, TPRelation, coalesce, is_coalesced, timeslice
from repro.core.sorting import is_sorted, sort_comparison, sort_counting, sort_tuples
from repro.core.timeslice import snapshot_lineages
from repro.core.tuple import TPTuple
from repro.lineage import Var

from .strategies import tp_relation


class TestSorting:
    @given(tp_relation("r", max_facts=3, max_intervals=5))
    def test_strategies_agree(self, relation):
        by_comparison = sort_comparison(relation.tuples)
        by_counting = sort_counting(relation.tuples)
        assert by_comparison == by_counting

    @given(tp_relation("r"))
    def test_sorted_order(self, relation):
        ordered = sort_tuples(relation.tuples)
        assert is_sorted(ordered)

    def test_counting_sparse_fallback(self):
        # Starts far apart force the sparse-domain fallback path.
        r = TPRelation.from_rows(
            "r", ("x",), [("v", 1_000_000, 1_000_001, 0.5), ("v", 1, 2, 0.5)]
        )
        assert [t.start for t in sort_counting(r.tuples)] == [1, 1_000_000]

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            sort_tuples([], strategy="bogo")

    def test_is_sorted_detects_disorder(self, rel_a):
        assert not is_sorted(list(rel_a.tuples))  # milk before chips in rows
        assert is_sorted(rel_a.sorted_tuples())


class TestTimeslice:
    def test_paper_semantics(self, rel_a):
        snapshot = timeslice(rel_a, 2)
        assert {t.fact for t in snapshot} == {("milk",), ("dates",)}
        for t in snapshot:
            assert t.interval == Interval(2, 3)

    def test_probabilities_preserved(self, rel_a):
        snapshot = timeslice(rel_a, 5)
        (milk,) = [t for t in snapshot if t.fact == ("milk",)]
        assert milk.p == pytest.approx(0.3)

    def test_empty_outside_domain(self, rel_a):
        assert len(timeslice(rel_a, 100)) == 0

    def test_snapshot_lineages(self, rel_c):
        lams = snapshot_lineages(rel_c, 7)
        assert str(lams[("milk",)]) == "c2"
        assert str(lams[("chips",)]) == "c4"
        assert ("dates",) not in lams


class TestCoalesce:
    def _t(self, fact, lam, lo, hi, p=None):
        return TPTuple((fact,), lam, Interval(lo, hi), p)

    def test_merges_adjacent_equal_lineage(self):
        v = Var("r1")
        merged = coalesce([self._t("x", v, 1, 3), self._t("x", v, 3, 6)])
        assert merged == [self._t("x", v, 1, 6)]

    def test_keeps_gap(self):
        v = Var("r1")
        merged = coalesce([self._t("x", v, 1, 3), self._t("x", v, 4, 6)])
        assert len(merged) == 2

    def test_keeps_different_lineage(self):
        merged = coalesce(
            [self._t("x", Var("r1"), 1, 3), self._t("x", Var("r2"), 3, 6)]
        )
        assert len(merged) == 2

    def test_keeps_different_facts(self):
        v = Var("r1")
        merged = coalesce([self._t("x", v, 1, 3), self._t("y", v, 3, 6)])
        assert len(merged) == 2

    def test_merge_chain(self):
        v = Var("r1")
        merged = coalesce(
            [self._t("x", v, 3, 6), self._t("x", v, 1, 3), self._t("x", v, 6, 9)]
        )
        assert merged == [self._t("x", v, 1, 9)]

    def test_probability_survives_merge(self):
        v = Var("r1")
        merged = coalesce(
            [self._t("x", v, 1, 3, 0.5), self._t("x", v, 3, 6, 0.5)]
        )
        assert merged[0].p == 0.5

    def test_none_probability_filled_from_partner(self):
        v = Var("r1")
        merged = coalesce(
            [self._t("x", v, 1, 3, None), self._t("x", v, 3, 6, 0.5)]
        )
        assert merged[0].p == 0.5

    def test_is_coalesced(self):
        v = Var("r1")
        assert is_coalesced([self._t("x", v, 1, 3), self._t("x", v, 4, 6)])
        assert not is_coalesced([self._t("x", v, 1, 3), self._t("x", v, 3, 6)])

    @given(tp_relation("r"))
    def test_idempotent(self, relation):
        once = coalesce(relation.tuples)
        twice = coalesce(once)
        assert once == twice

    @given(tp_relation("r"))
    def test_pointwise_preserving(self, relation):
        """Coalescing never changes which lineage is valid at any point."""
        merged = coalesce(relation.tuples)
        span = relation.time_span()
        if span is None:
            return
        for t in range(span.start, span.end):
            before = {
                (u.fact, u.lineage) for u in relation if u.interval.contains_point(t)
            }
            after = set()
            for u in merged:
                if u.interval.contains_point(t):
                    after.add((u.fact, u.lineage))
            assert before == after
