"""Tests for the Table-I lineage-concatenation functions."""

from __future__ import annotations

import pytest

from repro.lineage import (
    CONCAT_BY_NAME,
    Var,
    concat_and,
    concat_and_not,
    concat_or,
    land,
    lnot,
    lor,
)

l1, l2 = Var("r1"), Var("s1")


class TestAnd:
    def test_both_present(self):
        assert concat_and(l1, l2) == land(l1, l2)

    def test_null_left_rejected(self):
        with pytest.raises(ValueError):
            concat_and(None, l2)

    def test_null_right_rejected(self):
        with pytest.raises(ValueError):
            concat_and(l1, None)


class TestAndNot:
    def test_right_null_passthrough(self):
        # andNot(λ1, null) = (λ1) — Table I, first case.
        assert concat_and_not(l1, None) is l1

    def test_right_present(self):
        # andNot(λ1, λ2) = (λ1) ∧ ¬(λ2).
        assert concat_and_not(l1, l2) == land(l1, lnot(l2))

    def test_null_left_rejected(self):
        with pytest.raises(ValueError):
            concat_and_not(None, l2)

    def test_compound_right_parenthesized(self):
        compound = lor(Var("a1"), Var("b1"))
        assert str(concat_and_not(Var("c2"), compound)) == "c2∧¬(a1∨b1)"


class TestOr:
    def test_right_null(self):
        assert concat_or(l1, None) is l1

    def test_left_null(self):
        assert concat_or(None, l2) is l2

    def test_both_present(self):
        assert concat_or(l1, l2) == lor(l1, l2)

    def test_both_null_rejected(self):
        with pytest.raises(ValueError):
            concat_or(None, None)


class TestRegistry:
    def test_names(self):
        assert set(CONCAT_BY_NAME) == {"and", "andNot", "or"}

    def test_dispatch(self):
        assert CONCAT_BY_NAME["andNot"](l1, l2) == concat_and_not(l1, l2)
