"""Tests for the future-work algebra: TP join and TP projection.

Ground truth is per-time-point evaluation: at each time point the join
(projection) of the snapshots must match the snapshot of the result —
the same snapshot-reducibility discipline the set operations obey.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro import SchemaMismatchError, TPRelation
from repro.algebra import tp_join, tp_project
from repro.lineage import is_one_occurrence_form
from repro.semantics import check_change_preservation, check_duplicate_free

from .strategies import tp_relation


class TestJoinBasics:
    def test_doc_example(self):
        r = TPRelation.from_rows(
            "r", ("item", "store"), [("milk", "hb", 1, 5, 0.5)]
        )
        s = TPRelation.from_rows("s", ("item", "price"), [("milk", 2, 3, 8, 0.8)])
        result = tp_join(r, s, on=("item",))
        (t,) = list(result)
        assert t.fact == ("milk", "hb", 2)
        assert str(t.lineage) == "r1∧s1"
        assert (t.start, t.end) == (3, 5)
        assert t.p == pytest.approx(0.4)
        assert result.schema.attributes == ("item", "store", "price")

    def test_natural_join_uses_shared_attributes(self):
        r = TPRelation.from_rows("r", ("item",), [("milk", 1, 5, 0.5)])
        s = TPRelation.from_rows("s", ("item",), [("milk", 3, 8, 0.5)])
        result = tp_join(r, s)
        (t,) = list(result)
        assert (t.start, t.end) == (3, 5)

    def test_no_shared_attributes_rejected(self):
        r = TPRelation.from_rows("r", ("item",), [("milk", 1, 5, 0.5)])
        s = TPRelation.from_rows("s", ("price",), [(3, 3, 8, 0.5)])
        with pytest.raises(SchemaMismatchError):
            tp_join(r, s)

    def test_unknown_join_attribute_rejected(self):
        r = TPRelation.from_rows("r", ("item",), [("milk", 1, 5, 0.5)])
        s = TPRelation.from_rows("s", ("item",), [("milk", 3, 8, 0.5)])
        with pytest.raises(SchemaMismatchError):
            tp_join(r, s, on=("ghost",))

    def test_disjoint_times_empty(self):
        r = TPRelation.from_rows("r", ("item",), [("milk", 1, 3, 0.5)])
        s = TPRelation.from_rows("s", ("item",), [("milk", 5, 8, 0.5)])
        assert len(tp_join(r, s)) == 0

    def test_touching_intervals_empty(self):
        r = TPRelation.from_rows("r", ("item",), [("milk", 1, 3, 0.5)])
        s = TPRelation.from_rows("s", ("item",), [("milk", 3, 8, 0.5)])
        assert len(tp_join(r, s)) == 0

    def test_one_to_many(self):
        r = TPRelation.from_rows("r", ("item",), [("milk", 0, 10, 0.5)])
        s = TPRelation.from_rows(
            "s", ("item", "price"), [("milk", 2, 1, 4, 0.5), ("milk", 3, 6, 9, 0.5)]
        )
        result = tp_join(r, s)
        rows = {(t.fact, t.start, t.end) for t in result}
        assert rows == {
            (("milk", 2), 1, 4),
            (("milk", 3), 6, 9),
        }

    def test_duplicate_attribute_names_disambiguated(self):
        r = TPRelation.from_rows("r", ("item", "price"), [("milk", 1, 1, 5, 0.5)])
        s = TPRelation.from_rows("s", ("item", "price"), [("milk", 2, 3, 8, 0.5)])
        result = tp_join(r, s, on=("item",))
        assert result.schema.attributes == ("item", "price", "price_2")

    @settings(max_examples=40, deadline=None)
    @given(r=tp_relation("r"), s=tp_relation("s"))
    def test_pointwise_correct(self, r, s):
        """Snapshot reducibility of the join over random relations."""
        result = tp_join(r, s)
        span = set()
        for u in list(r) + list(s):
            span.update(range(u.start, u.end))
        for point in span:
            snap_r = [u for u in r if u.interval.contains_point(point)]
            snap_s = [u for u in s if u.interval.contains_point(point)]
            expected = {
                (rt.fact + st.fact[1:], str(rt.lineage), str(st.lineage))
                for rt in snap_r
                for st in snap_s
                if rt.fact[0] == st.fact[0]
            }
            actual = set()
            for t in result:
                if t.interval.contains_point(point):
                    lam_r, lam_s = t.lineage.children
                    actual.add((t.fact, str(lam_r), str(lam_s)))
            assert actual == expected

    @settings(max_examples=40, deadline=None)
    @given(r=tp_relation("r"), s=tp_relation("s"))
    def test_join_lineage_1of(self, r, s):
        for t in tp_join(r, s):
            assert is_one_occurrence_form(t.lineage)


class TestProjectBasics:
    def test_doc_example(self):
        r = TPRelation.from_rows(
            "r",
            ("item", "store"),
            [("milk", "hb", 1, 5, 0.5), ("milk", "oerlikon", 3, 8, 0.5)],
        )
        result = tp_project(r, ["item"])
        rows = {(t.start, t.end, str(t.lineage), round(t.p, 6)) for t in result}
        assert rows == {
            (1, 3, "r1", 0.5),
            (3, 5, "r1∨r2", 0.75),
            (5, 8, "r2", 0.5),
        }

    def test_identity_projection(self, rel_a):
        result = tp_project(rel_a, ["product"])
        assert result.equivalent_to(rel_a)

    def test_empty_attribute_list_rejected(self, rel_a):
        with pytest.raises(ValueError):
            tp_project(rel_a, [])

    def test_unknown_attribute_rejected(self, rel_a):
        with pytest.raises(SchemaMismatchError):
            tp_project(rel_a, ["color"])

    def test_output_duplicate_free_and_coalesced(self):
        r = TPRelation.from_rows(
            "r",
            ("item", "store"),
            [
                ("milk", "a", 0, 4, 0.5),
                ("milk", "b", 2, 6, 0.5),
                ("milk", "c", 8, 9, 0.5),
            ],
        )
        result = tp_project(r, ["item"])
        assert check_duplicate_free(result) == []
        assert check_change_preservation(result) == []

    def test_projection_merges_equal_adjacent_lineage(self):
        # Two stores with *identical* validity: fragments [1,5) from both
        # contributors collapse to a single maximal tuple.
        r = TPRelation.from_rows(
            "r",
            ("item", "store"),
            [("milk", "a", 1, 5, 0.5), ("milk", "b", 1, 5, 0.5)],
        )
        result = tp_project(r, ["item"])
        (t,) = list(result)
        assert str(t.lineage) == "r1∨r2"
        assert (t.start, t.end) == (1, 5)

    @settings(max_examples=40, deadline=None)
    @given(r=tp_relation("r", max_facts=3, max_intervals=3))
    def test_pointwise_lineage_or(self, r):
        """At each point, the projected lineage is the OR of contributors."""
        result = tp_project(r, ["fact"])
        span = r.time_span()
        if span is None:
            return
        for point in range(span.start, span.end):
            for fact in {t.fact for t in r}:
                contributors = {
                    str(t.lineage)
                    for t in r
                    if t.fact == fact and t.interval.contains_point(point)
                }
                out = [
                    t
                    for t in result
                    if t.fact == fact and t.interval.contains_point(point)
                ]
                if not contributors:
                    assert out == []
                else:
                    assert len(out) == 1
                    assert set(map(str, _disjuncts(out[0].lineage))) == contributors

    @settings(max_examples=30, deadline=None)
    @given(r=tp_relation("r", max_facts=2, max_intervals=3))
    def test_probabilities_match_worlds(self, r):
        """Projection probabilities against brute-force enumeration."""
        if len(r.events) > 10:
            return
        from itertools import product as cartesian

        result = tp_project(r, ["fact"])
        for t in result:
            point = t.start
            expected = 0.0
            names = sorted(r.events)
            for bits in cartesian((False, True), repeat=len(names)):
                world = dict(zip(names, bits))
                weight = 1.0
                for name, present in world.items():
                    weight *= r.events[name] if present else 1 - r.events[name]
                holds = any(
                    world[str(u.lineage)]
                    for u in r
                    if u.fact == t.fact and u.interval.contains_point(point)
                )
                if holds:
                    expected += weight
            assert t.p == pytest.approx(expected)


def _disjuncts(lineage):
    from repro.lineage import Or

    if isinstance(lineage, Or):
        return lineage.children
    return (lineage,)
