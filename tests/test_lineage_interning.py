"""Tests for the hash-consing layer and the memoized valuation.

Covers the three contract pillars of DESIGN.md §4–§5:

* identity equality — equal constructions yield the *same object*;
* cached metadata — O(1) lookups agree with the traversal oracles;
* valuation-memo invalidation — changing an events map is observed.
"""

from __future__ import annotations

import gc
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import TPRelation, tp_union
from repro.lineage import (
    And,
    Not,
    Or,
    Var,
    formula_size,
    intern_stats,
    is_one_occurrence_form,
    land,
    lnot,
    lor,
    parse_lineage,
    variable_occurrences,
    variables,
)
from repro.lineage.formula import TRUE, FALSE, Bottom, Top, _iter_var_names
from repro.lineage.onef import _is_one_occurrence_form_traversal
from repro.prob import (
    EventMap,
    Method,
    ProbabilityOptions,
    clear_valuation_cache,
    events_epoch,
    probability,
    probability_batch,
    valuation_cache_stats,
)
from tests.strategies import tp_relation_pair

a, b, c = Var("a"), Var("b"), Var("c")


@st.composite
def formulas(draw, depth: int = 4):
    """Random lineage formulas over a small variable pool (repeats likely)."""
    if depth == 0:
        return draw(st.sampled_from([a, b, c]))
    kind = draw(st.integers(0, 3))
    if kind == 0:
        return draw(st.sampled_from([a, b, c]))
    if kind == 1:
        return lnot(draw(formulas(depth=depth - 1)))
    left = draw(formulas(depth=depth - 1))
    right = draw(formulas(depth=depth - 1))
    return land(left, right) if kind == 2 else lor(left, right)


class TestIdentityEquality:
    def test_vars_interned(self):
        assert Var("x1") is Var("x1")
        assert Var("x1") is not Var("x2")

    def test_equal_constructions_are_identical(self):
        assert (a & b) is land(a, b)
        assert land(a, land(b, c)) is land(land(a, b), c)
        assert land(a, land(b, c)) is And((a, b, c))
        assert lor(a, lor(b, c)) is Or((a, b, c))
        assert lnot(a) is Not(a) is ~a

    def test_constants_are_singletons(self):
        assert Top() is TRUE
        assert Bottom() is FALSE

    def test_parser_returns_interned_nodes(self):
        assert parse_lineage("c1 & !(a1 | b1)") is (
            Var("c1") & ~(Var("a1") | Var("b1"))
        )

    def test_order_still_distinguishes(self):
        assert land(a, b) is not land(b, a)
        assert land(a, b) != land(b, a)

    @given(formulas(), formulas())
    def test_syntactic_equality_iff_identity(self, f, g):
        # With interning, == (identity) must coincide with syntactic
        # equality, proxied here by the printed form.
        assert (f == g) == (str(f) == str(g))

    @given(formulas())
    def test_pickle_roundtrip_reinterns(self, f):
        assert pickle.loads(pickle.dumps(f)) is f

    def test_intern_tables_release_garbage(self):
        before = intern_stats()["or"]
        lor(Var("ephemeral_l"), Var("ephemeral_r"))  # not retained
        gc.collect()
        assert intern_stats()["or"] <= before + 1


class TestCachedMetadata:
    @given(formulas())
    def test_size_matches_traversal(self, f):
        count = 0
        stack = [f]
        while stack:
            node = stack.pop()
            count += 1
            if isinstance(node, Not):
                stack.append(node.child)
            elif isinstance(node, (And, Or)):
                stack.extend(node.children)
        assert formula_size(f) == f.size == count

    @given(formulas())
    def test_variables_match_traversal(self, f):
        assert variables(f) == frozenset(_iter_var_names(f))

    @given(formulas())
    def test_occurrences_match_traversal(self, f):
        oracle: dict[str, int] = {}
        for name in _iter_var_names(f):
            oracle[name] = oracle.get(name, 0) + 1
        assert variable_occurrences(f) == oracle
        assert f.var_total == sum(oracle.values())

    @given(formulas())
    def test_1of_flag_matches_traversal(self, f):
        assert is_one_occurrence_form(f) == _is_one_occurrence_form_traversal(f)

    @given(formulas())
    def test_repeated_count_matches_occurrences(self, f):
        expected = sum(1 for n in variable_occurrences(f).values() if n > 1)
        assert f.repeated_count() == expected

    def test_occurrences_copy_is_private(self):
        f = land(a, b)
        variable_occurrences(f)["a"] = 99
        assert variable_occurrences(f) == {"a": 1, "b": 1}


class TestValuationMemo:
    def setup_method(self):
        clear_valuation_cache()

    def test_repeated_valuation_hits_memo(self):
        events = EventMap({"a": 0.5, "b": 0.25})
        f = a | b
        first = probability(f, events)
        before = valuation_cache_stats()["hits"]
        assert probability(f, events) == first == pytest.approx(0.625)
        assert valuation_cache_stats()["hits"] == before + 1

    def test_eventmap_mutation_invalidates(self):
        events = EventMap({"a": 0.5, "b": 0.25})
        f = a | b
        assert probability(f, events) == pytest.approx(0.625)
        events["a"] = 0.1  # in-place value overwrite, same length
        assert probability(f, events) == pytest.approx(1 - 0.9 * 0.75)

    def test_eventmap_ior_invalidates(self):
        events = EventMap({"a": 0.5})
        assert probability(a, events) == 0.5
        events |= {"a": 0.9}  # dict.__ior__ mutates in place
        assert probability(a, events) == pytest.approx(0.9)

    def test_explicit_method_bypasses_memo(self):
        from repro.core.errors import ValuationError

        events = EventMap({"a": 0.5})
        repeated = a & a  # not in 1OF
        probability(repeated, events)  # AUTO caches the Shannon value
        with pytest.raises(ValuationError):
            # The cached AUTO value must not mask 1OF validation.
            probability(repeated, events, method=Method.ONE_OCCURRENCE)

    def test_eventmap_noop_probes_keep_epoch(self):
        events = EventMap({"a": 0.5})
        before = events.epoch
        assert events.setdefault("a", 0.9) == 0.5  # pure read
        events.update()
        assert events.epoch == before  # memo stays warm
        events.setdefault("b", 0.7)  # actual insertion
        assert events.epoch != before

    def test_mutated_merged_events_not_served_again(self):
        r = TPRelation.from_rows("r", ("x",), [("v", 1, 5, 0.5)])
        s = TPRelation.from_rows("s", ("x",), [("v", 3, 8, 0.4)])
        merged = r.merged_events(s)
        merged["r1"] = 0.999  # caller mutates the returned mapping
        fresh = r.merged_events(s)
        assert fresh is not merged
        assert fresh["r1"] == 0.5

    def test_eventmap_update_and_delete_invalidate(self):
        events = EventMap({"a": 0.5})
        assert probability(a, events) == 0.5
        events.update({"a": 0.75})
        assert probability(a, events) == 0.75
        events.pop("a")
        with pytest.raises(Exception):
            probability(a, events)

    def test_relation_event_maps_self_invalidate(self):
        r = TPRelation.from_rows("r", ("x",), [("v", 1, 5, 0.5)])
        t = r.tuples[0]
        assert r.probability_of(t) == pytest.approx(0.5)
        r.events["r1"] = 0.9
        assert r.probability_of(t) == pytest.approx(0.9)

    def test_plain_small_dicts_keyed_by_content(self):
        f = a & b
        assert probability(f, {"a": 0.5, "b": 0.5}) == pytest.approx(0.25)
        # Same content, different object: epochs coincide — and that is
        # sound, because equal content implies equal probabilities.
        assert events_epoch({"a": 0.5, "b": 0.5}) == events_epoch(
            {"a": 0.5, "b": 0.5}
        )
        # Different content must never share an epoch.
        assert events_epoch({"a": 0.5, "b": 0.5}) != events_epoch(
            {"a": 0.5, "b": 0.6}
        )
        assert probability(f, {"a": 0.5, "b": 0.6}) == pytest.approx(0.30)

    def test_large_plain_dicts_skip_the_memo(self):
        events = {f"v{i}": 0.5 for i in range(1000)}
        before = valuation_cache_stats()["entries"]
        probability(Var("v0"), events)
        assert valuation_cache_stats()["entries"] == before

    def test_monte_carlo_never_cached(self):
        events = EventMap({"a": 0.5})
        before = valuation_cache_stats()["entries"]
        probability(a, events, method=Method.MONTE_CARLO)
        assert valuation_cache_stats()["entries"] == before

    def test_cache_can_be_disabled(self):
        events = EventMap({"a": 0.5})
        opts = ProbabilityOptions(cache=False)
        before = valuation_cache_stats()["entries"]
        probability(a, events, options=opts)
        assert valuation_cache_stats()["entries"] == before

    def test_batch_deduplicates_identical_lineages(self):
        events = EventMap({"a": 0.5, "b": 0.25})
        batch = [a | b, a | b, a | b, a]
        values = probability_batch(batch, events)
        assert values == pytest.approx([0.625, 0.625, 0.625, 0.5])
        stats = valuation_cache_stats()
        assert stats["misses"] == 2  # one per distinct formula
        assert stats["hits"] == 2

    def test_missing_variable_error_not_nested(self):
        from repro.core.errors import UnknownVariableError
        from repro.prob import probability_1of

        f = lnot(lor(land(a, Var("zz")), c))
        with pytest.raises(UnknownVariableError) as err:
            probability_1of(f, {"a": 0.5, "c": 0.5})
        message = str(err.value)
        assert "'zz'" in message
        # UnknownVariableError subclasses KeyError; deep formulas must not
        # re-wrap the message once per recursion level.
        assert message.count("no probability registered") == 1

    def test_uncached_batch_keeps_monte_carlo_draws_independent(self):
        import random

        f = a & a  # repeated variable: AUTO resorts to Monte Carlo below
        events = EventMap({"a": 0.5})

        def opts():
            return ProbabilityOptions(
                cache=False, exact_repeated_limit=-1, samples=500,
                rng=random.Random(7),
            )

        batch = probability_batch([f, f], events, options=opts())
        o = opts()
        singles = [
            probability(f, events, options=o),
            probability(f, events, options=o),
        ]
        # Two independent draws from the same stream — the batch must not
        # collapse duplicated formulas onto one correlated sample.
        assert batch == singles

    @settings(max_examples=25, deadline=None)
    @given(tp_relation_pair())
    def test_memoized_results_match_uncached(self, pair):
        r, s = pair
        cached = tp_union(r, s)
        clear_valuation_cache()
        uncached = tp_union(r, s, options=ProbabilityOptions(cache=False))
        assert cached.equivalent_to(uncached)
