"""Determinism of the parallel engine, and its memo/interning contract.

The engine's determinism argument (DESIGN.md §10.4) has two halves —
chunk layout is a pure function of the input, and ``Pool.map`` merges in
submission order regardless of worker completion order — so running the
same plan twice under the pool must yield identical results, and those
results must be indistinguishable (object-identity included) from the
serial engine's.  On top of that, a parallel root materialization must
leave the valuation memo as warm as a serial one would: pool-computed
probabilities are seeded into the parent's memo bucket, so follow-up
valuations over the same events epoch hit without recomputing.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.setops import tp_intersect, tp_union
from repro.lineage.formula import FALSE, TRUE, Bottom, Top, Var, land, lnot, lor
from repro.lineage.serialize import decode_batch, encode_batch
from repro.datasets import generate_join_pair, generate_pair
from repro.db.database import TPDatabase
from repro.exec.config import (
    ParallelConfig,
    parallel_execution,
    parse_workers,
)
from repro.exec.pool import shutdown_pools
from repro.prob.valuation import (
    clear_valuation_cache,
    valuation_cache_stats,
)


def teardown_module(module) -> None:
    shutdown_pools()


def force_parallel(workers: int = 2) -> ParallelConfig:
    return ParallelConfig(workers=workers, min_tuples=0, min_formulas=0)


def assert_bit_identical(a, b) -> None:
    assert len(a) == len(b)
    for x, y in zip(a, b):
        assert x.fact == y.fact
        assert x.interval == y.interval
        assert x.lineage is y.lineage
        assert x.p == y.p


class TestRepeatability:
    def test_same_plan_twice_under_the_pool(self):
        """Worker completion order cannot leak into the result."""
        r, s = generate_pair(1500, n_facts=6, seed=2)
        with parallel_execution(force_parallel(4)):
            first = tp_union(r, s)
            second = tp_union(r, s)
        assert_bit_identical(first, second)

    def test_database_query_repeatable(self):
        db = TPDatabase(parallel=2)
        r, s = generate_pair(1200, n_facts=5, seed=8)
        db.register(r)
        db.register(s)
        with parallel_execution(force_parallel(2)):
            first = db.query("(r | s) - (r & s)")
            second = db.query("(r | s) - (r & s)")
        assert_bit_identical(first, second)

    def test_join_query_repeatable(self):
        r, s = generate_join_pair(1200, n_keys=6, seed=5)
        db = TPDatabase(parallel=2)
        db.register(r)
        db.register(s)
        with parallel_execution(force_parallel(2)):
            first = db.query("r LEFT OUTER JOIN s ON key")
            second = db.query("r LEFT OUTER JOIN s ON key")
        assert_bit_identical(first, second)


class TestReinterning:
    def test_parallel_formulas_are_serial_objects(self):
        """Re-interned lineage is `is`-identical to serially-built."""
        r, s = generate_pair(1500, n_facts=6, seed=4)
        serial = tp_intersect(r, s)
        with parallel_execution(force_parallel(2)):
            parallel = tp_intersect(r, s)
        assert_bit_identical(parallel, serial)

    def test_chained_query_shares_interned_subformulas(self):
        """Operators chained over pool outputs keep identity equality."""
        r, s = generate_pair(1000, n_facts=4, seed=6)
        serial = tp_union(tp_intersect(r, s), tp_union(r, s))
        with parallel_execution(force_parallel(2)):
            parallel = tp_union(tp_intersect(r, s), tp_union(r, s))
        assert_bit_identical(parallel, serial)


class TestMemoAfterParallelMaterialization:
    def test_memo_hits_after_parallel_root(self):
        """Pool-computed values are seeded into the parent's memo."""
        clear_valuation_cache()
        r, s = generate_pair(1500, n_facts=5, seed=3)
        with parallel_execution(force_parallel(2)):
            first = tp_union(r, s)
        warmed = valuation_cache_stats()
        assert warmed["entries"] > 0, "parallel root left the memo cold"
        # The same operation, serial: every distinct lineage must hit.
        second = tp_union(r, s)
        stats = valuation_cache_stats()
        assert stats["hits"] > warmed["hits"]
        assert stats["misses"] == warmed["misses"], (
            "serial follow-up recomputed probabilities the pool had "
            "already materialized"
        )
        assert_bit_identical(first, second)

    def test_parallel_values_equal_serial_values(self):
        """The memo is seeded with bit-identical floats."""
        r, s = generate_pair(1500, n_facts=5, seed=10)
        clear_valuation_cache()
        serial = tp_union(r, s)
        clear_valuation_cache()
        with parallel_execution(force_parallel(2)):
            parallel = tp_union(r, s)
        assert_bit_identical(parallel, serial)


_pa, _pb, _pc = Var("pa"), Var("pb"), Var("pc")


@st.composite
def _formulas(draw, depth: int = 3):
    if depth == 0:
        return draw(st.sampled_from([_pa, _pb, _pc]))
    kind = draw(st.integers(0, 3))
    if kind == 0:
        return draw(st.sampled_from([_pa, _pb, _pc]))
    if kind == 1:
        return lnot(draw(_formulas(depth=depth - 1)))
    left = draw(_formulas(depth=depth - 1))
    right = draw(_formulas(depth=depth - 1))
    return land(left, right) if kind == 2 else lor(left, right)


class TestLineageBatchCodec:
    """The §4.1 batch codec the valuation tasks ship formulas with."""

    @settings(max_examples=60, deadline=None)
    @given(st.lists(_formulas(), max_size=8))
    def test_round_trip_is_identity(self, batch):
        batch = [f for f in batch if not isinstance(f, (Top, Bottom))]
        nodes, roots = encode_batch(batch)
        decoded = decode_batch(nodes, roots)
        assert len(decoded) == len(batch)
        for back, original in zip(decoded, batch):
            assert back is original  # re-interning == same process identity

    @settings(max_examples=30, deadline=None)
    @given(st.lists(_formulas(), max_size=8))
    def test_wire_form_survives_pickling(self, batch):
        batch = [f for f in batch if not isinstance(f, (Top, Bottom))]
        encoded = pickle.loads(pickle.dumps(encode_batch(batch), protocol=-1))
        assert decode_batch(*encoded) == batch

    def test_shared_subformulas_encoded_once(self):
        shared = land(_pa, _pb)
        nodes, roots = encode_batch([shared, lor(shared, _pc)])
        # pa, pb, pa∧pb, pc, (pa∧pb)∨pc — the shared node appears once.
        assert len(nodes) == 5
        assert roots == [2, 4]

    def test_constants_are_rejected(self):
        with pytest.raises(TypeError):
            encode_batch([TRUE])
        with pytest.raises(TypeError):
            encode_batch([FALSE])


class TestConfigValidation:
    def test_parse_workers_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="positive worker count"):
            parse_workers("0")
        with pytest.raises(ValueError, match="positive worker count"):
            parse_workers("-3")
        with pytest.raises(ValueError, match="integer"):
            parse_workers("many")
        assert parse_workers("4") == 4

    def test_config_rejects_bad_workers(self):
        with pytest.raises(ValueError):
            ParallelConfig(workers=0)

    def test_database_rejects_nonpositive_parallel(self):
        with pytest.raises(ValueError, match="positive worker count"):
            TPDatabase(parallel=0)
        with pytest.raises(ValueError, match="positive worker count"):
            TPDatabase(parallel=-2)

    def test_context_manager_restores(self):
        from repro.exec.config import active_config

        before = active_config()
        with parallel_execution(force_parallel(3)) as cfg:
            assert cfg.workers == 3
            assert active_config() is cfg
        assert active_config() == before

    def test_serial_config_disables_engine(self):
        from repro.exec import engine

        r, s = generate_pair(400, n_facts=4, seed=1)
        tr, ts = r.sorted_tuples(), s.sorted_tuples()
        assert (
            engine.setop_sweep_rows(tr, ts, "union", config=ParallelConfig())
            is None
        )
