"""Tests for n-ary (multiway) TP union and intersection."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro import UnsupportedOperationError, tp_except, tp_intersect, tp_union
from repro.core.multiway import MultiwaySweep, multi_intersect, multi_union
from repro.core.sorting import sort_tuples
from repro.semantics import check_change_preservation, check_duplicate_free

from .strategies import tp_relation


class TestMultiUnion:
    def test_paper_relations(self, rel_a, rel_b, rel_c):
        result = multi_union(rel_a, rel_b, rel_c)
        folded = tp_union(tp_union(rel_a, rel_b), rel_c)
        # Same facts/intervals/probabilities; lineage association may
        # differ ((a∨b)∨c vs a∨b∨c) — flattening makes them equal here.
        assert result.contents() == folded.contents()
        mine = {(t.fact, t.interval): t.p for t in result}
        theirs = {(t.fact, t.interval): t.p for t in folded}
        for key, p in mine.items():
            assert p == pytest.approx(theirs[key])

    def test_three_way_overlap_lineage(self):
        from repro import TPRelation

        r1 = TPRelation.from_rows("r1", ("x",), [("f", 0, 10, 0.5)])
        r2 = TPRelation.from_rows("r2", ("x",), [("f", 2, 8, 0.5)])
        r3 = TPRelation.from_rows("r3", ("x",), [("f", 4, 6, 0.5)])
        result = multi_union(r1, r2, r3)
        rows = {(t.start, t.end, str(t.lineage)) for t in result}
        assert rows == {
            (0, 2, "r11"),
            (2, 4, "r11∨r21"),
            (4, 6, "r11∨r21∨r31"),
            (6, 8, "r11∨r21"),
            (8, 10, "r11"),
        }

    @settings(max_examples=30, deadline=None)
    @given(
        r1=tp_relation("x1", max_facts=2, max_intervals=3),
        r2=tp_relation("x2", max_facts=2, max_intervals=3),
        r3=tp_relation("x3", max_facts=2, max_intervals=3),
    )
    def test_equals_folded_binary(self, r1, r2, r3):
        result = multi_union(r1, r2, r3)
        folded = tp_union(tp_union(r1, r2), r3)
        assert result.contents() == folded.contents()

    @settings(max_examples=30, deadline=None)
    @given(
        r1=tp_relation("x1", max_facts=2, max_intervals=3),
        r2=tp_relation("x2", max_facts=2, max_intervals=3),
    )
    def test_two_way_matches_binary(self, r1, r2):
        assert multi_union(r1, r2).equivalent_to(tp_union(r1, r2))

    @settings(max_examples=25, deadline=None)
    @given(
        r1=tp_relation("x1", max_facts=2, max_intervals=3),
        r2=tp_relation("x2", max_facts=2, max_intervals=3),
        r3=tp_relation("x3", max_facts=2, max_intervals=3),
    )
    def test_invariants(self, r1, r2, r3):
        result = multi_union(r1, r2, r3)
        assert check_duplicate_free(result) == []
        assert check_change_preservation(result) == []


class TestMultiIntersect:
    def test_three_way(self):
        from repro import TPRelation

        r1 = TPRelation.from_rows("r1", ("x",), [("f", 0, 10, 0.5)])
        r2 = TPRelation.from_rows("r2", ("x",), [("f", 2, 8, 0.4)])
        r3 = TPRelation.from_rows("r3", ("x",), [("f", 4, 6, 0.2)])
        result = multi_intersect(r1, r2, r3)
        (t,) = list(result)
        assert (t.start, t.end) == (4, 6)
        assert str(t.lineage) == "r11∧r21∧r31"
        assert t.p == pytest.approx(0.5 * 0.4 * 0.2)

    @settings(max_examples=30, deadline=None)
    @given(
        r1=tp_relation("x1", max_facts=2, max_intervals=3),
        r2=tp_relation("x2", max_facts=2, max_intervals=3),
        r3=tp_relation("x3", max_facts=2, max_intervals=3),
    )
    def test_equals_folded_binary(self, r1, r2, r3):
        result = multi_intersect(r1, r2, r3)
        folded = tp_intersect(tp_intersect(r1, r2), r3)
        assert result.contents() == folded.contents()

    def test_early_exit_on_exhausted_side(self, rel_a, rel_b):
        from repro import TPRelation

        empty = TPRelation.from_rows("e", ("product",), [])
        assert len(multi_intersect(rel_a, empty, rel_b)) == 0


class TestDifferenceComposition:
    @settings(max_examples=30, deadline=None)
    @given(
        r=tp_relation("x1", max_facts=2, max_intervals=3),
        s1=tp_relation("x2", max_facts=2, max_intervals=3),
        s2=tp_relation("x3", max_facts=2, max_intervals=3),
    )
    def test_chained_difference_via_multi_union(self, r, s1, s2):
        """r − s1 − s2 covers the same (fact, point, probability) space as
        r − (s1 ∪ s2); lineages differ syntactically but agree
        semantically."""
        chained = tp_except(tp_except(r, s1), s2)
        via_union = tp_except(r, multi_union(s1, s2))
        left = {(t.fact, p) for t in chained for p in range(t.start, t.end)}
        right = {(t.fact, p) for t in via_union for p in range(t.start, t.end)}
        assert left == right
        probs_left = {
            (t.fact, p): t.p for t in chained for p in range(t.start, t.end)
        }
        probs_right = {
            (t.fact, p): t.p for t in via_union for p in range(t.start, t.end)
        }
        for key, value in probs_left.items():
            assert value == pytest.approx(probs_right[key])


class TestSweepMechanics:
    def test_needs_two_relations(self, rel_a):
        with pytest.raises(UnsupportedOperationError):
            multi_union(rel_a)

    def test_schema_compatibility(self, rel_a):
        from repro import SchemaMismatchError, TPRelation

        wide = TPRelation.from_rows(
            "w", ("product", "store"), [("milk", "hb", 1, 3, 0.5)]
        )
        with pytest.raises(SchemaMismatchError):
            multi_union(rel_a, wide)

    def test_window_count_bound(self, rel_a, rel_b, rel_c):
        """Generalized Prop. 1: ≤ Σ nᵢ − fd windows."""
        sweep = MultiwaySweep(
            [
                sort_tuples(rel_a.tuples),
                sort_tuples(rel_b.tuples),
                sort_tuples(rel_c.tuples),
            ]
        )
        while sweep.advance() is not None:
            pass
        bound = (
            rel_a.endpoint_count()
            + rel_b.endpoint_count()
            + rel_c.endpoint_count()
            - len(rel_a.facts() | rel_b.facts() | rel_c.facts())
        )
        assert sweep.windows_produced <= bound
