"""Differential suite: parallel execution ≡ serial, bit for bit.

For every operator — the three set operations, all five generalized
joins, and incremental view refresh — the parallel engine must produce
*the same relation object graph* the serial engine produces: same tuples
in the same order, same intervals, same probabilities (float-exact), and
the **identical interned lineage objects** (``is``, not just ``==``).
That is the contract that makes ``REPRO_PARALLEL`` safe to flip on any
workload (DESIGN.md §10).

Three layers of attack:

* hypothesis property tests over random relation pairs, at worker counts
  {1, 2, 4} (1 = the serial engine itself, pinning that the gate really
  is a no-op);
* adversarial chunkings driven through the engine's explicit ``chunks``
  parameter: one fact group per chunk, everything in one chunk, and
  boundaries produced by gap-splitting the largest group;
* chunker unit properties: boundaries never split a fact group except at
  coverage gaps, every tuple is covered exactly once, chunks are
  size-balanced contiguous spans.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.algebra.join import (
    JOIN_KINDS,
    _group_by_key,
    _sweep_rows,
    join_layout,
    tp_join_operation,
)
from repro.core.gtwindow import WINDOW_POLICIES
from repro.core.setops import OPERATIONS, sweep_rows, tp_set_operation
from repro.datasets import generate_join_pair, generate_pair
from repro.exec import engine
from repro.exec.chunking import (
    aligned_chunks,
    balanced_partition,
    fact_runs,
    merged_group_items,
    split_group_at_gaps,
)
from repro.exec.config import ParallelConfig, parallel_execution
from repro.exec.pool import shutdown_pools
from repro.query.parser import parse_query
from repro.store import MaterializedView, SegmentStore

from .strategies import tp_join_pair, tp_relation_pair

SET_OPS = tuple(OPERATIONS)
WORKER_COUNTS = (1, 2, 4)

pytestmark = pytest.mark.filterwarnings("ignore::pytest.PytestUnraisableExceptionWarning")


def teardown_module(module) -> None:
    shutdown_pools()


def force_parallel(workers: int) -> ParallelConfig:
    """A configuration that parallelizes every operation, however small."""
    return ParallelConfig(workers=workers, min_tuples=0, min_formulas=0)


def assert_bit_identical(parallel, serial) -> None:
    """Same tuples, same order, same interned lineage, same floats."""
    assert parallel.schema.attributes == serial.schema.attributes
    assert len(parallel) == len(serial)
    for p, s in zip(parallel, serial):
        assert p.fact == s.fact
        assert p.interval == s.interval
        assert p.lineage is s.lineage, (
            f"lineage not identity-equal: {p.lineage} vs {s.lineage}"
        )
        assert p.p == s.p  # float-exact, not approximate
    assert dict(parallel.events) == dict(serial.events)


def assert_rows_identical(parallel_rows, serial_rows) -> None:
    assert len(parallel_rows) == len(serial_rows)
    for p, s in zip(parallel_rows, serial_rows):
        assert p[0] == s[0] and p[2] == s[2] and p[3] == s[3]
        assert p[1] is s[1]


# ----------------------------------------------------------------------
# set operations
# ----------------------------------------------------------------------
class TestSetOperationsDifferential:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("op", SET_OPS)
    @settings(max_examples=25, deadline=None)
    @given(pair=tp_relation_pair())
    def test_random_pairs(self, op, workers, pair):
        r, s = pair
        serial = tp_set_operation(op, r, s)
        with parallel_execution(force_parallel(workers)):
            parallel = tp_set_operation(op, r, s)
        assert_bit_identical(parallel, serial)

    @pytest.mark.parametrize("op", SET_OPS)
    def test_fig8_scale_multi_fact(self, op):
        r, s = generate_pair(3000, n_facts=7, seed=11)
        serial = tp_set_operation(op, r, s)
        with parallel_execution(force_parallel(4)):
            parallel = tp_set_operation(op, r, s)
        assert_bit_identical(parallel, serial)

    @pytest.mark.parametrize("op", SET_OPS)
    def test_single_fact_gap_split(self, op):
        """One giant group must shard at coverage gaps, not serialize."""
        r, s = generate_pair(3000, seed=7)  # n_facts=1: the fig-8 layout
        tr, ts = r.sorted_tuples(), s.sorted_tuples()
        chunks = aligned_chunks(tr, ts, 8)
        assert len(chunks) > 1, "gap splitting failed to shard the group"
        serial = tp_set_operation(op, r, s)
        with parallel_execution(force_parallel(4)):
            parallel = tp_set_operation(op, r, s)
        assert_bit_identical(parallel, serial)


class TestAdversarialChunkings:
    """Engine-level: explicit chunk layouts against the serial kernel."""

    @staticmethod
    def _reference(tr, ts, op):
        return sweep_rows(tr, ts, op)

    @pytest.mark.parametrize("op", SET_OPS)
    def test_one_group_per_chunk(self, op):
        r, s = generate_pair(600, n_facts=12, seed=3)
        tr, ts = r.sorted_tuples(), s.sorted_tuples()
        chunks = [
            ((r_lo, r_hi), (s_lo, s_hi))
            for r_lo, r_hi, s_lo, s_hi in merged_group_items(tr, ts)
        ]
        assert len(chunks) >= 12
        rows = engine.setop_sweep_rows(
            tr, ts, op, config=force_parallel(2), chunks=chunks
        )
        assert_rows_identical(rows, self._reference(tr, ts, op))

    @pytest.mark.parametrize("op", SET_OPS)
    def test_all_groups_in_one_chunk_stays_serial(self, op):
        r, s = generate_pair(600, n_facts=12, seed=3)
        tr, ts = r.sorted_tuples(), s.sorted_tuples()
        chunks = [((0, len(tr)), (0, len(ts)))]
        # A single chunk cannot be parallelized — the engine must decline
        # (returning None) rather than pay the pool round-trip.
        assert (
            engine.setop_sweep_rows(
                tr, ts, op, config=force_parallel(2), chunks=chunks
            )
            is None
        )

    @pytest.mark.parametrize("op", SET_OPS)
    def test_boundary_splits_largest_group_at_gaps(self, op):
        """Chunk boundaries inside the largest group (at coverage gaps)."""
        r, s = generate_pair(900, n_facts=3, seed=5)
        tr, ts = r.sorted_tuples(), s.sorted_tuples()
        items = merged_group_items(tr, ts)
        largest = max(
            items, key=lambda it: (it[1] - it[0]) + (it[3] - it[2])
        )
        split = split_group_at_gaps(tr, ts, largest, max_weight=40)
        assert len(split) > 1, "expected gaps inside the largest group"
        chunks = []
        for item in items:
            parts = split if item == largest else [item]
            chunks.extend(
                ((r_lo, r_hi), (s_lo, s_hi)) for r_lo, r_hi, s_lo, s_hi in parts
            )
        rows = engine.setop_sweep_rows(
            tr, ts, op, config=force_parallel(4), chunks=chunks
        )
        assert_rows_identical(rows, self._reference(tr, ts, op))


# ----------------------------------------------------------------------
# generalized joins
# ----------------------------------------------------------------------
class TestJoinsDifferential:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("kind", JOIN_KINDS)
    @settings(max_examples=20, deadline=None)
    @given(pair=tp_join_pair())
    def test_random_pairs(self, kind, workers, pair):
        r, s = pair
        serial = tp_join_operation(kind, r, s, ("k",))
        with parallel_execution(force_parallel(workers)):
            parallel = tp_join_operation(kind, r, s, ("k",))
        assert_bit_identical(parallel, serial)

    @pytest.mark.parametrize("kind", JOIN_KINDS)
    def test_join_workload_scale(self, kind):
        r, s = generate_join_pair(2000, n_keys=9, seed=2)
        serial = tp_join_operation(kind, r, s, ("key",))
        with parallel_execution(force_parallel(4)):
            parallel = tp_join_operation(kind, r, s, ("key",))
        assert_bit_identical(parallel, serial)

    @pytest.mark.parametrize("kind", JOIN_KINDS)
    def test_driver_rows_identical(self, kind):
        """Engine driver vs the serial per-key loop, row for row."""
        r, s = generate_join_pair(1200, n_keys=6, seed=4)
        layout = join_layout(kind, r, s, ("key",))
        policy = WINDOW_POLICIES[kind]
        r_groups = _group_by_key(r.sorted_tuples(), layout.r_key_idx)
        s_groups = _group_by_key(s.sorted_tuples(), layout.s_key_idx)
        if policy.preserve_left and policy.preserve_right:
            keys = list(r_groups) + [k for k in s_groups if k not in r_groups]
        elif policy.preserve_left:
            keys = list(r_groups)
        elif policy.preserve_right:
            keys = list(s_groups)
        else:
            keys = [k for k in r_groups if k in s_groups]
        serial = _sweep_rows(layout, r, s, policy)
        rows = engine.join_sweep_rows(
            layout, policy, keys, r_groups, s_groups, config=force_parallel(2)
        )
        assert rows is not None
        assert_rows_identical(rows, serial)

    @pytest.mark.parametrize("kind", ("left_outer", "full_outer", "anti"))
    @settings(max_examples=15, deadline=None)
    @given(pair=tp_join_pair(s_rest=False))
    def test_degenerate_layouts(self, kind, pair):
        """Key-only right side: the collapse paths under the pool."""
        r, s = pair
        serial = tp_join_operation(kind, r, s, ("k",))
        with parallel_execution(force_parallel(2)):
            parallel = tp_join_operation(kind, r, s, ("k",))
        assert_bit_identical(parallel, serial)


# ----------------------------------------------------------------------
# incremental view refresh
# ----------------------------------------------------------------------
def _mutate(store: SegmentStore, seed: int) -> None:
    tuples = list(store.iter_sorted())
    victims = tuples[seed % max(1, len(tuples)) :: 3][:20]
    deletes = [(*t.fact, t.start, t.end) for t in victims]
    inserts = [
        (*t.fact, t.start, max(t.start + 1, t.end - 1), 0.37) for t in victims
    ]
    store.apply(inserts=inserts, deletes=deletes)


class TestIncrementalRefreshDifferential:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize(
        "query,maker",
        [
            ("r - (r & s)", lambda: generate_pair(800, n_facts=4, seed=9)),
            ("r | s", lambda: generate_pair(800, seed=13)),
            (
                "r LEFT OUTER JOIN s ON key",
                lambda: generate_join_pair(800, n_keys=5, seed=9),
            ),
            (
                "r ANTI JOIN s ON key",
                lambda: generate_join_pair(800, n_keys=5, seed=21),
            ),
        ],
    )
    def test_refresh_matches_serial(self, query, maker, workers):
        r0, s0 = maker()
        ast = parse_query(query)

        serial_stores = {
            "r": SegmentStore.from_relation(r0),
            "s": SegmentStore.from_relation(s0),
        }
        serial_view = MaterializedView("v", ast, serial_stores, policy="manual")

        parallel_stores = {
            "r": SegmentStore.from_relation(r0),
            "s": SegmentStore.from_relation(s0),
        }
        parallel_view = MaterializedView(
            "v", ast, parallel_stores, policy="manual",
            parallel=workers if workers > 1 else None,
        )
        if workers > 1:
            # Force every re-sweep through the pool regardless of size.
            parallel_view._engine._parallel = force_parallel(workers)

        for round_no in range(3):
            _mutate(serial_stores["r"], seed=round_no)
            _mutate(parallel_stores["r"], seed=round_no)
            serial_view.refresh()
            parallel_view.refresh()
            assert_bit_identical(parallel_view.relation(), serial_view.relation())


# ----------------------------------------------------------------------
# cost-based optimizer × worker pool
# ----------------------------------------------------------------------
class TestOptimizerParallelDifferential:
    """Optimized queries through the pool ≡ optimized queries serial.

    Two guarantees (DESIGN.md §11): the cost-based *choice* is
    worker-count-invariant (the worker-aware sweep discount scales
    candidates, it must not reorder them on this corpus), and executing
    the chosen plan is bit-identical across worker counts {1, 2} — the
    PR-4 differential contract extended to every optimization level.
    """

    QUERIES = (
        ("r - (r & s)", lambda: generate_pair(400, n_facts=4, seed=9)),
        ("(r | s | r)[fact='f1'] - s", lambda: generate_pair(400, n_facts=3, seed=5)),
        (
            "(r JOIN s ON key)[key='k2']",
            lambda: generate_join_pair(400, n_keys=5, seed=9),
        ),
        (
            "r LEFT OUTER JOIN s ON key",
            lambda: generate_join_pair(400, n_keys=5, seed=3),
        ),
    )

    @pytest.mark.parametrize("level", ("safe", "aggressive"))
    @pytest.mark.parametrize("query,maker", QUERIES)
    def test_chosen_plan_worker_invariant(self, query, maker, level):
        from repro.db import TPDatabase
        from repro.query import choose_plan

        r, s = maker()
        db = TPDatabase()
        db.register(r.rename("r"))
        db.register(s.rename("s"))
        ast = parse_query(query)
        stats = db._stats_catalog(ast)
        aggressive = level == "aggressive"
        serial_choice = choose_plan(ast, stats, aggressive=aggressive, workers=1)
        pooled_choice = choose_plan(ast, stats, aggressive=aggressive, workers=2)
        assert serial_choice.chosen == pooled_choice.chosen

    @pytest.mark.parametrize("workers", (1, 2))
    @pytest.mark.parametrize("level", ("off", "safe", "aggressive"))
    @pytest.mark.parametrize("query,maker", QUERIES)
    def test_optimized_results_bit_identical(self, query, maker, level, workers):
        from repro.db import TPDatabase

        r, s = maker()

        def build():
            db = TPDatabase()
            db.register(r.rename("r"))
            db.register(s.rename("s"))
            return db

        serial = build().query(query, optimize=level)
        with parallel_execution(force_parallel(workers)):
            pooled = build().query(query, optimize=level)
        assert_bit_identical(pooled, serial)


# ----------------------------------------------------------------------
# chunker unit properties
# ----------------------------------------------------------------------
class TestChunker:
    @settings(max_examples=40, deadline=None)
    @given(pair=tp_relation_pair(max_facts=3, max_intervals=5))
    def test_chunks_cover_exactly_once_in_order(self, pair):
        r, s = pair
        tr, ts = r.sorted_tuples(), s.sorted_tuples()
        chunks = aligned_chunks(tr, ts, 4)
        r_cursor = s_cursor = 0
        for (r_lo, r_hi), (s_lo, s_hi) in chunks:
            assert r_lo == r_cursor and s_lo == s_cursor
            assert r_hi >= r_lo and s_hi >= s_lo
            r_cursor, s_cursor = r_hi, s_hi
        if tr or ts:
            assert r_cursor == len(tr) and s_cursor == len(ts)

    @settings(max_examples=40, deadline=None)
    @given(pair=tp_relation_pair(max_facts=3, max_intervals=5))
    def test_boundaries_respect_groups_or_gaps(self, pair):
        """A boundary inside a fact group must sit on a coverage gap."""
        r, s = pair
        tr, ts = r.sorted_tuples(), s.sorted_tuples()
        for (r_lo, _), (s_lo, _) in aligned_chunks(tr, ts, 4)[1:]:
            boundary_facts = set()
            if 0 < r_lo < len(tr):
                if tr[r_lo - 1].fact == tr[r_lo].fact:
                    boundary_facts.add(tr[r_lo].fact)
            if 0 < s_lo < len(ts):
                if ts[s_lo - 1].fact == ts[s_lo].fact:
                    boundary_facts.add(ts[s_lo].fact)
            for fact in boundary_facts:
                cut_points = []
                if r_lo < len(tr) and tr[r_lo].fact == fact:
                    cut_points.append(tr[r_lo].interval.start)
                if s_lo < len(ts) and ts[s_lo].fact == fact:
                    cut_points.append(ts[s_lo].interval.start)
                cut = min(cut_points)
                crossing = [
                    t
                    for run in (tr, ts)
                    for t in run
                    if t.fact == fact
                    and t.interval.start < cut < t.interval.end
                ]
                assert not crossing, (
                    f"boundary at {cut} splits fact {fact!r} across a "
                    f"covered span: {crossing}"
                )

    def test_balanced_partition_is_contiguous_and_complete(self):
        weights = [5, 1, 1, 1, 40, 1, 1, 5, 5]
        spans = balanced_partition(weights, 4)
        assert 2 <= len(spans) <= 4
        assert spans[0][0] == 0 and spans[-1][1] == len(weights)
        for (_, hi), (lo, _) in zip(spans, spans[1:]):
            assert hi == lo
        totals = [sum(weights[lo:hi]) for lo, hi in spans]
        assert all(totals)
        # The giant item dominates exactly one span; the light items
        # around it still get spans of their own (no serialization).
        assert sum(total >= 40 for total in totals) == 1

    def test_fact_runs(self):
        r, _ = generate_pair(200, n_facts=5, seed=1)
        tr = r.sorted_tuples()
        runs = fact_runs(tr)
        assert runs[0][0] == 0 and runs[-1][1] == len(tr)
        for lo, hi in runs:
            facts = {t.fact for t in tr[lo:hi]}
            assert len(facts) == 1
        for (_, hi), (lo, _) in zip(runs, runs[1:]):
            assert hi == lo
            assert tr[hi - 1].fact != tr[lo].fact
