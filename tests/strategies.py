"""Hypothesis strategies for random duplicate-free TP relations and
random TP query trees (the plan-space metamorphic harness's generator)."""

from __future__ import annotations

from hypothesis import strategies as st

from repro import Interval, TPRelation, TPSchema, base_tuple
from repro.algebra.join import JOIN_KINDS, join_layout_from_schemas
from repro.query import JoinNode, RelationRef, SelectionNode, SetOpNode

FACT_POOL = [("x",), ("y",), ("z",)]

#: Fact pools for join-shaped relations: (key, rest) combinations.
JOIN_KEY_POOL = ["k1", "k2"]

#: Selection values drawn by the query-tree strategy: every fact value
#: the catalog relations can produce, plus one that never matches.
QUERY_VALUE_POOL = ["k1", "k2", "a1", "a2", "b1", "b2", "nope"]


@st.composite
def disjoint_intervals(draw, max_intervals: int = 5, max_len: int = 5, max_gap: int = 4):
    """A chain of disjoint (possibly adjacent) intervals."""
    count = draw(st.integers(min_value=0, max_value=max_intervals))
    cursor = draw(st.integers(min_value=0, max_value=5))
    intervals = []
    for _ in range(count):
        cursor += draw(st.integers(min_value=0, max_value=max_gap))
        length = draw(st.integers(min_value=1, max_value=max_len))
        intervals.append(Interval(cursor, cursor + length))
        cursor += length
    return intervals


@st.composite
def tp_relation(
    draw,
    name: str,
    max_facts: int = 3,
    max_intervals: int = 4,
    max_len: int = 5,
    max_gap: int = 4,
):
    """A random duplicate-free base relation over a tiny fact pool."""
    n_facts = draw(st.integers(min_value=1, max_value=max_facts))
    tuples = []
    events = {}
    counter = 0
    for fact in FACT_POOL[:n_facts]:
        for interval in draw(
            disjoint_intervals(max_intervals=max_intervals, max_len=max_len, max_gap=max_gap)
        ):
            counter += 1
            identifier = f"{name}{counter}"
            p = draw(st.floats(min_value=0.05, max_value=1.0, allow_nan=False))
            tuples.append(base_tuple(fact, identifier, interval, p))
            events[identifier] = p
    return TPRelation(name, TPSchema(("fact",)), tuples, events)


@st.composite
def tp_relation_pair(draw, **kwargs):
    """Two independent duplicate-free relations over the same schema."""
    return draw(tp_relation("r", **kwargs)), draw(tp_relation("s", **kwargs))


@st.composite
def tp_join_relation(
    draw,
    name: str,
    attributes: tuple[str, ...],
    rest_pool: list,
    max_facts: int = 3,
    max_intervals: int = 2,
    max_len: int = 4,
    max_gap: int = 3,
):
    """A duplicate-free relation shaped for join tests.

    Facts combine a join key from :data:`JOIN_KEY_POOL` with a rest value
    from ``rest_pool`` (or are key-only for degenerate-layout tests, when
    ``rest_pool`` is empty).  Different facts may overlap in time — the
    concurrency the generalized windows must handle — while same-fact
    chains stay disjoint (duplicate-freeness).
    """
    candidates = (
        [(k,) for k in JOIN_KEY_POOL]
        if not rest_pool
        else [(k, v) for k in JOIN_KEY_POOL for v in rest_pool]
    )
    n_facts = draw(st.integers(min_value=0, max_value=min(max_facts, len(candidates))))
    facts = candidates[:n_facts]
    tuples = []
    events = {}
    counter = 0
    for fact in facts:
        for interval in draw(
            disjoint_intervals(max_intervals=max_intervals, max_len=max_len, max_gap=max_gap)
        ):
            counter += 1
            identifier = f"{name}{counter}"
            p = draw(st.floats(min_value=0.05, max_value=0.95, allow_nan=False))
            tuples.append(base_tuple(fact, identifier, interval, p))
            events[identifier] = p
    return TPRelation(name, TPSchema(attributes), tuples, events)


@st.composite
def tp_query_catalog(
    draw,
    max_relations: int = 4,
    max_intervals: int = 2,
    max_len: int = 3,
    max_gap: int = 2,
):
    """A catalog of small join-able relations over two schema families.

    Schemas are ``("k", "a")`` and ``("k", "b")``: every relation shares
    the join key ``k`` (so natural joins are always valid), set
    operations between families are arity-compatible, and joining the
    families produces the third schema ``("k", "a", "b")`` — the closure
    the query-tree strategy builds over.
    """
    n = draw(st.integers(min_value=2, max_value=max_relations))
    catalog: dict[str, TPRelation] = {}
    for i in range(n):
        name = f"q{i + 1}"
        family = draw(st.sampled_from(["a", "b"]))
        catalog[name] = draw(
            tp_join_relation(
                name,
                ("k", family),
                ["a1", "a2"] if family == "a" else ["b1", "b2"],
                max_facts=3,
                max_intervals=max_intervals,
                max_len=max_len,
                max_gap=max_gap,
            )
        )
    return catalog


@st.composite
def query_tree(
    draw,
    catalog,
    max_depth: int = 3,
    joins: bool = True,
    selections: bool = True,
):
    """A random, schema-correct TP query tree over ``catalog``.

    Composable by construction: selections, all five generalized joins
    (natural and explicit ``ON k``), and n-ary set-operation chains nest
    freely to ``max_depth``.  Set-operation operands are kept
    arity-compatible (positional semantics); when a drawn operand's
    arity differs, the left operand is repeated instead — which also
    exercises the repeated-subgoal (#P-hard) valuation path.  The
    returned tree parses/plans/executes without further assumptions —
    the metamorphic harness and the query-layer property tests share it.
    """
    names = sorted(catalog)

    def leaf():
        name = draw(st.sampled_from(names))
        return RelationRef(name), catalog[name].schema

    kinds = ["leaf", "setop", "setop"]
    if selections:
        kinds.append("select")
    if joins:
        kinds += ["join", "join"]

    def node(depth):
        kind = draw(st.sampled_from(kinds)) if depth > 0 else "leaf"
        if kind == "leaf":
            return leaf()
        if kind == "select":
            child, schema = node(depth - 1)
            attribute = draw(st.sampled_from(schema.attributes))
            value = draw(st.sampled_from(QUERY_VALUE_POOL))
            return SelectionNode(child, attribute, value), schema
        if kind == "join":
            join_kind = draw(st.sampled_from(JOIN_KINDS))
            left, left_schema = node(depth - 1)
            right, right_schema = node(depth - 1)
            on = draw(st.sampled_from([None, ("k",)]))
            layout = join_layout_from_schemas(
                join_kind, left_schema, right_schema, on
            )
            return JoinNode(join_kind, left, right, on), layout.out_schema
        # setop: a chain of 1-2 operators, left-associated as parsed.
        current, schema = node(depth - 1)
        for _ in range(draw(st.integers(min_value=1, max_value=2))):
            op = draw(st.sampled_from(["union", "intersect", "except"]))
            right, right_schema = node(depth - 1)
            if right_schema.arity != schema.arity:
                right = current  # repeat the left operand (same arity)
            current = SetOpNode(op, current, right)
        return current, schema

    tree, _ = node(max_depth)
    return tree


@st.composite
def query_scenario(
    draw,
    max_relations: int = 4,
    max_depth: int = 3,
    joins: bool = True,
    selections: bool = True,
    **catalog_kwargs,
):
    """A (catalog, query tree) pair — the metamorphic harness's input."""
    catalog = draw(
        tp_query_catalog(max_relations=max_relations, **catalog_kwargs)
    )
    tree = draw(
        query_tree(catalog, max_depth=max_depth, joins=joins, selections=selections)
    )
    return catalog, tree


@st.composite
def tp_join_pair(draw, s_rest: bool = True, **kwargs):
    """An (r, s) pair over ("k", "a") and ("k", "b") sharing key pool.

    ``s_rest=False`` makes the right side key-only — the degenerate
    layout in which outer-join matched and preserved facts coincide.
    """
    r = draw(tp_join_relation("r", ("k", "a"), ["a1", "a2"], **kwargs))
    s_attrs = ("k", "b") if s_rest else ("k",)
    s = draw(tp_join_relation("s", s_attrs, ["b1", "b2"] if s_rest else [], **kwargs))
    return r, s
