"""Hypothesis strategies for random duplicate-free TP relations."""

from __future__ import annotations

from hypothesis import strategies as st

from repro import Interval, TPRelation, TPSchema, base_tuple

FACT_POOL = [("x",), ("y",), ("z",)]

#: Fact pools for join-shaped relations: (key, rest) combinations.
JOIN_KEY_POOL = ["k1", "k2"]


@st.composite
def disjoint_intervals(draw, max_intervals: int = 5, max_len: int = 5, max_gap: int = 4):
    """A chain of disjoint (possibly adjacent) intervals."""
    count = draw(st.integers(min_value=0, max_value=max_intervals))
    cursor = draw(st.integers(min_value=0, max_value=5))
    intervals = []
    for _ in range(count):
        cursor += draw(st.integers(min_value=0, max_value=max_gap))
        length = draw(st.integers(min_value=1, max_value=max_len))
        intervals.append(Interval(cursor, cursor + length))
        cursor += length
    return intervals


@st.composite
def tp_relation(
    draw,
    name: str,
    max_facts: int = 3,
    max_intervals: int = 4,
    max_len: int = 5,
    max_gap: int = 4,
):
    """A random duplicate-free base relation over a tiny fact pool."""
    n_facts = draw(st.integers(min_value=1, max_value=max_facts))
    tuples = []
    events = {}
    counter = 0
    for fact in FACT_POOL[:n_facts]:
        for interval in draw(
            disjoint_intervals(max_intervals=max_intervals, max_len=max_len, max_gap=max_gap)
        ):
            counter += 1
            identifier = f"{name}{counter}"
            p = draw(st.floats(min_value=0.05, max_value=1.0, allow_nan=False))
            tuples.append(base_tuple(fact, identifier, interval, p))
            events[identifier] = p
    return TPRelation(name, TPSchema(("fact",)), tuples, events)


@st.composite
def tp_relation_pair(draw, **kwargs):
    """Two independent duplicate-free relations over the same schema."""
    return draw(tp_relation("r", **kwargs)), draw(tp_relation("s", **kwargs))


@st.composite
def tp_join_relation(
    draw,
    name: str,
    attributes: tuple[str, ...],
    rest_pool: list,
    max_facts: int = 3,
    max_intervals: int = 2,
    max_len: int = 4,
    max_gap: int = 3,
):
    """A duplicate-free relation shaped for join tests.

    Facts combine a join key from :data:`JOIN_KEY_POOL` with a rest value
    from ``rest_pool`` (or are key-only for degenerate-layout tests, when
    ``rest_pool`` is empty).  Different facts may overlap in time — the
    concurrency the generalized windows must handle — while same-fact
    chains stay disjoint (duplicate-freeness).
    """
    candidates = (
        [(k,) for k in JOIN_KEY_POOL]
        if not rest_pool
        else [(k, v) for k in JOIN_KEY_POOL for v in rest_pool]
    )
    n_facts = draw(st.integers(min_value=0, max_value=min(max_facts, len(candidates))))
    facts = candidates[:n_facts]
    tuples = []
    events = {}
    counter = 0
    for fact in facts:
        for interval in draw(
            disjoint_intervals(max_intervals=max_intervals, max_len=max_len, max_gap=max_gap)
        ):
            counter += 1
            identifier = f"{name}{counter}"
            p = draw(st.floats(min_value=0.05, max_value=0.95, allow_nan=False))
            tuples.append(base_tuple(fact, identifier, interval, p))
            events[identifier] = p
    return TPRelation(name, TPSchema(attributes), tuples, events)


@st.composite
def tp_join_pair(draw, s_rest: bool = True, **kwargs):
    """An (r, s) pair over ("k", "a") and ("k", "b") sharing key pool.

    ``s_rest=False`` makes the right side key-only — the degenerate
    layout in which outer-join matched and preserved facts coincide.
    """
    r = draw(tp_join_relation("r", ("k", "a"), ["a1", "a2"], **kwargs))
    s_attrs = ("k", "b") if s_rest else ("k",)
    s = draw(tp_join_relation("s", s_attrs, ["b1", "b2"] if s_rest else [], **kwargs))
    return r, s
