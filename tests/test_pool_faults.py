"""Worker-death resilience of the parallel execution pool (DESIGN.md §12).

``multiprocessing.Pool`` replaces a SIGKILLed worker but silently drops
the task it was holding, so a plain ``Pool.map`` would hang forever.
These tests kill real pool workers mid-map and assert the guarded
dispatch (:func:`repro.exec.pool.run_tasks`) instead (a) detects the
death, (b) retries the whole batch once on a fresh pool, and (c) falls
back to inline serial execution — with a ``RuntimeWarning`` — when the
fresh pool dies too.  Tasks are pure, so re-running a lost batch is
always safe; every path must produce the same results.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
import warnings

import pytest

import repro.exec.pool as pool_mod
import repro.exec.workers as workers_mod
from repro.exec.pool import WorkerDiedError, shutdown_pools

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="worker-kill tests rely on the fork start method (patched "
    "task function must be inherited by the children)",
)


def _in_worker() -> bool:
    return multiprocessing.current_process().name != "MainProcess"


def fake_run_task(task: tuple) -> list:
    """Test task dispatch, patched over :func:`repro.exec.workers.run_task`.

    ``echo`` returns its payload; ``sleep`` blocks (so a kill can land
    mid-map); ``die`` SIGKILLs the worker it runs in — but only in a
    worker, so the inline-serial fallback survives it; ``die-once``
    additionally leaves a flag file so only the first attempt dies;
    ``boom`` raises an ordinary task-level exception.
    """
    tag = task[0]
    if tag == "echo":
        return ["echo", task[1]]
    if tag == "sleep":
        time.sleep(task[1])
        return ["slept", task[1]]
    if tag == "die":
        if _in_worker():
            os.kill(os.getpid(), signal.SIGKILL)
        return ["survived-inline"]
    if tag == "die-once":
        flag = task[1]
        if _in_worker() and not os.path.exists(flag):
            with open(flag, "w"):
                pass
            os.kill(os.getpid(), signal.SIGKILL)
        return ["ran-after-retry"]
    if tag == "boom":
        raise ValueError("task-level failure")
    raise AssertionError(f"unknown test task {tag!r}")


@pytest.fixture(autouse=True)
def _patched_pool(monkeypatch):
    """Fresh pools running the fake dispatch, torn down afterwards.

    Patching before the pool is created matters: fork-started workers
    inherit the patched module state, and ``map_async`` ships the task
    function by qualified name, which the children resolve against it.
    """
    shutdown_pools()
    monkeypatch.setattr(workers_mod, "run_task", fake_run_task)
    monkeypatch.setattr(pool_mod, "run_task", fake_run_task)
    yield
    shutdown_pools()


def test_healthy_pool_maps_in_order():
    results = pool_mod.run_tasks([("echo", i) for i in range(8)], workers=2)
    assert results == [["echo", i] for i in range(8)]


def test_task_exception_propagates_unchanged():
    with pytest.raises(ValueError, match="task-level failure"):
        pool_mod.run_tasks([("echo", 0), ("boom",)], workers=2)


def test_sigkill_mid_map_is_detected_not_hung():
    """An externally SIGKILLed worker raises WorkerDiedError promptly."""
    pool = pool_mod.get_pool(2)
    victim = pool._pool[0].pid
    assert victim is not None
    timer = threading.Timer(0.2, os.kill, (victim, signal.SIGKILL))
    timer.start()
    try:
        start = time.monotonic()
        with pytest.raises(WorkerDiedError):
            pool_mod._map_guarded(pool, [("sleep", 30.0)] * 4)
        assert time.monotonic() - start < 10.0  # detected, not timed out
    finally:
        timer.cancel()
        shutdown_pools()


def test_transient_death_recovers_via_retry(tmp_path):
    """A worker that dies once succeeds on the fresh-pool retry, silently."""
    flag = str(tmp_path / "died-once")
    tasks = [("die-once", flag), ("echo", 1), ("echo", 2)]
    with warnings.catch_warnings(record=True) as captured:
        warnings.simplefilter("always")
        results = pool_mod.run_tasks(tasks, workers=2)
    assert results == [["ran-after-retry"], ["echo", 1], ["echo", 2]]
    assert not [w for w in captured if issubclass(w.category, RuntimeWarning)]


def test_persistent_death_falls_back_to_serial():
    """Both pool attempts die -> inline serial fallback with a warning."""
    tasks = [("die",), ("echo", 7)]
    with pytest.warns(RuntimeWarning, match="inline serially"):
        results = pool_mod.run_tasks(tasks, workers=2)
    assert results == [["survived-inline"], ["echo", 7]]


def test_single_task_runs_inline_without_pool():
    assert pool_mod.run_tasks([("die",)], workers=4) == [["survived-inline"]]
    assert not pool_mod._POOLS
