"""Worker-death resilience of the parallel execution pool (DESIGN.md §12).

``multiprocessing.Pool`` replaces a SIGKILLed worker but silently drops
the task it was holding, so a plain ``Pool.map`` would hang forever.
These tests kill real pool workers mid-map and assert the guarded
dispatch (:func:`repro.exec.pool.run_tasks`) instead (a) detects the
death, (b) retries the whole batch once on a fresh pool, and (c) falls
back to inline serial execution — with a ``RuntimeWarning`` — when the
fresh pool dies too.  Tasks are pure, so re-running a lost batch is
always safe; every path must produce the same results.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
import warnings

import pytest

import repro.exec.pool as pool_mod
import repro.exec.workers as workers_mod
from repro.exec.pool import WorkerDiedError, shutdown_pools

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="worker-kill tests rely on the fork start method (patched "
    "task function must be inherited by the children)",
)


def _in_worker() -> bool:
    return multiprocessing.current_process().name != "MainProcess"


def fake_run_task(task: tuple) -> list:
    """Test task dispatch, patched over :func:`repro.exec.workers.run_task`.

    ``echo`` returns its payload; ``sleep`` blocks (so a kill can land
    mid-map); ``die`` SIGKILLs the worker it runs in — but only in a
    worker, so the inline-serial fallback survives it; ``die-once``
    additionally leaves a flag file so only the first attempt dies;
    ``boom`` raises an ordinary task-level exception.
    """
    tag = task[0]
    if tag == "echo":
        return ["echo", task[1]]
    if tag == "sleep":
        time.sleep(task[1])
        return ["slept", task[1]]
    if tag == "die":
        if _in_worker():
            os.kill(os.getpid(), signal.SIGKILL)
        return ["survived-inline"]
    if tag == "die-once":
        flag = task[1]
        if _in_worker() and not os.path.exists(flag):
            with open(flag, "w"):
                pass
            os.kill(os.getpid(), signal.SIGKILL)
        return ["ran-after-retry"]
    if tag == "boom":
        raise ValueError("task-level failure")
    if tag == "oserr":
        # Record the attempt first, so a misclassifying retry (the bug:
        # task OSError treated as transport failure) leaves two lines.
        with open(task[1], "a") as fh:
            fh.write("attempt\n")
        raise OSError("task-level I/O failure")
    raise AssertionError(f"unknown test task {tag!r}")


@pytest.fixture(autouse=True)
def _patched_pool(monkeypatch):
    """Fresh pools running the fake dispatch, torn down afterwards.

    Patching before the pool is created matters: fork-started workers
    inherit the patched module state, and ``map_async`` ships the task
    function by qualified name, which the children resolve against it.
    """
    shutdown_pools()
    monkeypatch.setattr(workers_mod, "run_task", fake_run_task)
    monkeypatch.setattr(pool_mod, "run_task", fake_run_task)
    yield
    shutdown_pools()


def test_healthy_pool_maps_in_order():
    results = pool_mod.run_tasks([("echo", i) for i in range(8)], workers=2)
    assert results == [["echo", i] for i in range(8)]


def test_task_exception_propagates_unchanged():
    with pytest.raises(ValueError, match="task-level failure"):
        pool_mod.run_tasks([("echo", 0), ("boom",)], workers=2)


def test_sigkill_mid_map_is_detected_not_hung():
    """An externally SIGKILLed worker raises WorkerDiedError promptly."""
    pool = pool_mod.get_pool(2)
    victim = pool._pool[0].pid
    assert victim is not None
    timer = threading.Timer(0.2, os.kill, (victim, signal.SIGKILL))
    timer.start()
    try:
        start = time.monotonic()
        with pytest.raises(WorkerDiedError):
            pool_mod._map_guarded(pool, [("sleep", 30.0)] * 4)
        assert time.monotonic() - start < 10.0  # detected, not timed out
    finally:
        timer.cancel()
        shutdown_pools()


def test_transient_death_recovers_via_retry(tmp_path):
    """A worker that dies once succeeds on the fresh-pool retry, silently."""
    flag = str(tmp_path / "died-once")
    tasks = [("die-once", flag), ("echo", 1), ("echo", 2)]
    with warnings.catch_warnings(record=True) as captured:
        warnings.simplefilter("always")
        results = pool_mod.run_tasks(tasks, workers=2)
    assert results == [["ran-after-retry"], ["echo", 1], ["echo", 2]]
    assert not [w for w in captured if issubclass(w.category, RuntimeWarning)]


def test_persistent_death_falls_back_to_serial():
    """Both pool attempts die -> inline serial fallback with a warning."""
    tasks = [("die",), ("echo", 7)]
    with pytest.warns(RuntimeWarning, match="inline serially"):
        results = pool_mod.run_tasks(tasks, workers=2)
    assert results == [["survived-inline"], ["echo", 7]]


def test_single_task_runs_inline_without_pool():
    assert pool_mod.run_tasks([("die",)], workers=4) == [["survived-inline"]]
    assert not pool_mod._POOLS


def test_task_oserror_propagates_on_first_raise(tmp_path):
    """Regression: an OSError raised *by a task* is not a transport failure.

    The old handler caught ``(OSError, ProcessError)`` around the whole
    map, so a task-level OSError silently re-executed the batch up to
    twice (and could surface a different error than the first run's).
    It must propagate unchanged on the first raise: exactly one
    execution, no fresh-pool retry, no fallback warning.
    """
    marker = str(tmp_path / "attempts")
    with warnings.catch_warnings(record=True) as captured:
        warnings.simplefilter("always")
        with pytest.raises(OSError, match="task-level I/O failure"):
            pool_mod.run_tasks([("echo", 0), ("oserr", marker)], workers=2)
    with open(marker) as fh:
        attempts = fh.readlines()
    assert len(attempts) == 1, f"task re-executed {len(attempts)} times"
    assert not [w for w in captured if issubclass(w.category, RuntimeWarning)]


class _FakeProc:
    def __init__(self, pid, exitcode=None):
        self.pid = pid
        self.exitcode = exitcode


class _FakeResult:
    """A map result that becomes ready after N readiness checks."""

    def __init__(self, value, ready_after=0):
        self._value = value
        self._checks = ready_after

    def wait(self, timeout):
        pass

    def ready(self):
        self._checks -= 1
        return self._checks < 0

    def get(self):
        return self._value


class _FakePool:
    """Just enough of ``multiprocessing.Pool`` for ``_map_guarded``.

    ``schedule`` maps check number -> worker list, emulating the
    maintenance thread swapping ``pool._pool`` entries between polls.
    """

    def __init__(self, initial, result, schedule=None, submit_exc=None):
        self._workers = list(initial)
        self._result = result
        self._schedule = schedule or {}
        self._submit_exc = submit_exc
        self._checks = 0

    def map_async(self, fn, tasks, chunksize=1):
        if self._submit_exc is not None:
            raise self._submit_exc
        return self._result

    def terminate(self):  # the autouse fixture's shutdown reaches these
        pass

    def join(self):
        pass

    @property
    def _pool(self):
        self._checks += 1
        swap = self._schedule.get(self._checks)
        if swap is not None:
            self._workers = list(swap)
        return self._workers


def test_map_guarded_tolerates_replacement_with_none_pid():
    """A half-started replacement worker (pid None) is not a death.

    The maintenance thread may have appended a replacement whose pid is
    not set yet; the old code's pid-set comparison could misread that
    (or crash on the reaped proc).  The snapshot discipline must let the
    map finish normally.
    """
    workers = [_FakeProc(101), _FakeProc(102)]
    pool = _FakePool(
        workers,
        _FakeResult(["done"], ready_after=3),
        # After the baseline snapshot, a None-pid replacement appears
        # alongside the (still live) originals: benign.
        schedule={2: [_FakeProc(101), _FakeProc(102), _FakeProc(None)]},
    )
    assert pool_mod._map_guarded(pool, [("echo", 0), ("echo", 1)]) == ["done"]


def test_map_guarded_detects_vanished_baseline_pid():
    """A baseline worker gone from the pool list is a death."""
    pool = _FakePool(
        [_FakeProc(201), _FakeProc(202)],
        _FakeResult(["never"], ready_after=100),
        schedule={2: [_FakeProc(202), _FakeProc(None)]},
    )
    with pytest.raises(WorkerDiedError, match="died mid-map"):
        pool_mod._map_guarded(pool, [("echo", 0), ("echo", 1)])


def test_map_guarded_detects_nonnone_exitcode():
    """A worker with an exitcode set is a death even if its pid lingers."""
    pool = _FakePool(
        [_FakeProc(301), _FakeProc(302)],
        _FakeResult(["never"], ready_after=100),
        schedule={2: [_FakeProc(301), _FakeProc(302, exitcode=-9)]},
    )
    with pytest.raises(WorkerDiedError, match="died mid-map"):
        pool_mod._map_guarded(pool, [("echo", 0), ("echo", 1)])


def test_map_guarded_classifies_submit_failure_as_transport():
    """OSError from the submission itself (dead pool) is transport trouble."""
    pool = _FakePool(
        [_FakeProc(401)],
        _FakeResult(["never"]),
        submit_exc=OSError("broken pipe"),
    )
    with pytest.raises(WorkerDiedError, match="could not submit"):
        pool_mod._map_guarded(pool, [("echo", 0), ("echo", 1)])


def test_pool_worker_pids_tolerates_none_pids(monkeypatch):
    """pool_worker_pids snapshots each pool and skips half-started procs."""
    fake = _FakePool([_FakeProc(501), _FakeProc(None), _FakeProc(502, -9)],
                     _FakeResult([]))
    monkeypatch.setattr(pool_mod, "_POOLS", {2: fake})
    assert pool_mod.pool_worker_pids() == [501]
