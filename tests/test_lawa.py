"""Tests for the LAWA window advancer — including the paper's Fig. 4/6
traces and the pseudocode corner cases documented in DESIGN.md §3."""

from __future__ import annotations

from hypothesis import given

from repro import LawaSweep, TPRelation, lawa_windows
from repro.core.sorting import sort_tuples

from .strategies import tp_relation_pair


def windows_of(r: TPRelation, s: TPRelation):
    return list(
        lawa_windows(sort_tuples(r.tuples), sort_tuples(s.tuples))
    )


def summary(window):
    lam_r = None if window.lam_r is None else str(window.lam_r)
    lam_s = None if window.lam_s is None else str(window.lam_s)
    return (window.fact, window.win_ts, window.win_te, lam_r, lam_s)


class TestPaperTraces:
    def test_fig4_milk_windows(self, rel_a, rel_c):
        """The three LAWA calls illustrated in Fig. 4 (left = c, right = a)."""
        c_milk = rel_c.select(product="milk")
        a_milk = rel_a.select(product="milk")
        produced = [summary(w) for w in windows_of(c_milk, a_milk)]
        assert produced == [
            (("milk",), 1, 2, "c1", None),
            (("milk",), 2, 4, "c1", "a1"),
            (("milk",), 4, 6, None, "a1"),
            (("milk",), 6, 8, "c2", "a1"),
            (("milk",), 8, 10, None, "a1"),
        ]

    def test_fig6_filter_decisions(self, rel_a, rel_c):
        """Fig. 6: which windows yield output tuples for σ(c) −Tp σ(a)."""
        c_milk = rel_c.select(product="milk")
        a_milk = rel_a.select(product="milk")
        accepted = [
            summary(w) for w in windows_of(c_milk, a_milk) if w.lam_r is not None
        ]
        assert accepted == [
            (("milk",), 1, 2, "c1", None),
            (("milk",), 2, 4, "c1", "a1"),
            (("milk",), 6, 8, "c2", "a1"),
        ]

    def test_proposition1_bound_exact_on_fig4(self, rel_a, rel_c):
        c_milk = rel_c.select(product="milk")
        a_milk = rel_a.select(product="milk")
        sweep = LawaSweep(sort_tuples(c_milk.tuples), sort_tuples(a_milk.tuples))
        while sweep.advance() is not None:
            pass
        nr = c_milk.endpoint_count()
        ns = a_milk.endpoint_count()
        assert sweep.windows_produced == nr + ns - 1  # bound met with equality


class TestCornerCases:
    """The pseudocode corrections of DESIGN.md §3, pinned."""

    def test_no_truncation_by_other_fact(self):
        # DESIGN §3.3: a cursor tuple of fact f must not bound a window
        # of fact e.  Here e's single tuple spans [1,10) while f's tuple
        # starts at 5.
        r = TPRelation.from_rows("r", ("x",), [("f", 5, 6, 0.5)])
        s = TPRelation.from_rows("s", ("x",), [("e", 1, 10, 0.5)])
        produced = {summary(w) for w in windows_of(r, s)}
        assert (("e",), 1, 10, None, "s1") in produced
        assert (("f",), 5, 6, "r1", None) in produced
        assert len(produced) == 2

    def test_trailing_windows_after_left_cursor_exhausted(self):
        # DESIGN §3.4: r's only tuple is split repeatedly by s after the
        # r cursor is exhausted; all five windows must be produced.
        r = TPRelation.from_rows("r", ("x",), [("f", 0, 100, 0.5)])
        s = TPRelation.from_rows(
            "s", ("x",), [("f", 10, 20, 0.5), ("f", 30, 40, 0.5)]
        )
        produced = [summary(w) for w in windows_of(r, s)]
        assert produced == [
            (("f",), 0, 10, "r1", None),
            (("f",), 10, 20, "r1", "s1"),
            (("f",), 20, 30, "r1", None),
            (("f",), 30, 40, "r1", "s2"),
            (("f",), 40, 100, "r1", None),
        ]

    def test_gap_within_fact_group(self):
        # After both valid tuples expire, the next window of the same
        # fact starts at the next start point, not at prevWinTe.
        r = TPRelation.from_rows("r", ("x",), [("f", 1, 2, 0.5), ("f", 8, 9, 0.5)])
        s = TPRelation.from_rows("s", ("x",), [("f", 8, 10, 0.5)])
        produced = [summary(w) for w in windows_of(r, s)]
        assert produced == [
            (("f",), 1, 2, "r1", None),
            (("f",), 8, 9, "r2", "s1"),
            (("f",), 9, 10, None, "s1"),
        ]

    def test_empty_inputs(self):
        empty = TPRelation.from_rows("r", ("x",), [])
        assert windows_of(empty, empty) == []

    def test_one_empty_input(self):
        r = TPRelation.from_rows("r", ("x",), [("f", 1, 3, 0.5)])
        empty = TPRelation.from_rows("s", ("x",), [])
        assert [summary(w) for w in windows_of(r, empty)] == [
            (("f",), 1, 3, "r1", None)
        ]
        assert [summary(w) for w in windows_of(empty, r)] == [
            (("f",), 1, 3, None, "r1")
        ]

    def test_adjacent_same_fact_tuples(self):
        # Duplicate-free relations may contain adjacent intervals; the
        # boundary must still split windows (different lineage).
        r = TPRelation.from_rows("r", ("x",), [("f", 1, 3, 0.5), ("f", 3, 5, 0.5)])
        s = TPRelation.from_rows("s", ("x",), [("f", 2, 4, 0.5)])
        produced = [summary(w) for w in windows_of(r, s)]
        assert produced == [
            (("f",), 1, 2, "r1", None),
            (("f",), 2, 3, "r1", "s1"),
            (("f",), 3, 4, "r2", "s1"),
            (("f",), 4, 5, "r2", None),
        ]

    def test_identical_intervals(self):
        r = TPRelation.from_rows("r", ("x",), [("f", 1, 5, 0.5)])
        s = TPRelation.from_rows("s", ("x",), [("f", 1, 5, 0.5)])
        assert [summary(w) for w in windows_of(r, s)] == [
            (("f",), 1, 5, "r1", "s1")
        ]

    def test_multiple_facts_processed_in_sorted_order(self):
        r = TPRelation.from_rows("r", ("x",), [("b", 1, 3, 0.5), ("a", 2, 4, 0.5)])
        s = TPRelation.from_rows("s", ("x",), [("c", 1, 2, 0.5)])
        facts = [w.fact for w in windows_of(r, s)]
        assert facts == [("a",), ("b",), ("c",)]


class TestSweepStateAndProperties:
    def test_exhaustion_flags(self):
        r = TPRelation.from_rows("r", ("x",), [("f", 1, 3, 0.5)])
        s = TPRelation.from_rows("s", ("x",), [("f", 5, 7, 0.5)])
        sweep = LawaSweep(sort_tuples(r.tuples), sort_tuples(s.tuples))
        assert not sweep.r_exhausted and not sweep.s_exhausted
        sweep.advance()  # [1,3) of r
        assert sweep.r_exhausted and not sweep.s_exhausted
        sweep.advance()  # [5,7) of s
        assert sweep.r_exhausted and sweep.s_exhausted
        assert sweep.advance() is None

    def test_iterator_protocol(self, rel_a, rel_c):
        sweep = LawaSweep(
            sort_tuples(rel_c.tuples), sort_tuples(rel_a.tuples)
        )
        count = sum(1 for _ in sweep)
        assert count == sweep.windows_produced

    @given(tp_relation_pair())
    def test_windows_partition_each_fact_coverage(self, pair):
        """Windows are disjoint, ordered and cover exactly the points
        where at least one input tuple is valid."""
        r, s = pair
        produced = windows_of(r, s)
        covered: dict = {}
        for w in produced:
            for t in range(w.win_ts, w.win_te):
                key = (w.fact, t)
                assert key not in covered, "windows overlap"
                covered[key] = (w.lam_r, w.lam_s)
        expected: set = set()
        for u in list(r) + list(s):
            for t in range(u.start, u.end):
                expected.add((u.fact, t))
        assert set(covered) == expected

    @given(tp_relation_pair())
    def test_window_lineages_match_validity(self, pair):
        r, s = pair
        for w in windows_of(r, s):
            for t in (w.win_ts, w.win_te - 1):
                lam_r = None
                for u in r:
                    if u.fact == w.fact and u.interval.contains_point(t):
                        lam_r = u.lineage
                lam_s = None
                for u in s:
                    if u.fact == w.fact and u.interval.contains_point(t):
                        lam_s = u.lineage
                assert w.lam_r == lam_r
                assert w.lam_s == lam_s

    @given(tp_relation_pair())
    def test_proposition1_window_bound(self, pair):
        """Prop. 1: #windows ≤ nr + ns − fd."""
        r, s = pair
        if not len(r) and not len(s):
            return
        sweep = LawaSweep(sort_tuples(r.tuples), sort_tuples(s.tuples))
        while sweep.advance() is not None:
            pass
        fd = len(r.facts() | s.facts())
        bound = r.endpoint_count() + s.endpoint_count() - fd
        assert sweep.windows_produced <= bound
