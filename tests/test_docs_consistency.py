"""Docs stay honest: every CLI flag the documentation names must exist.

The front-door docs (README.md, docs/benchmarks.md) promise specific
command-line flags.  These tests extract every ``--flag`` token from the
markdown and check it against the real argparse surfaces — so a renamed
or removed option cannot linger in the documentation, and the flags the
README is required to document are actually documented.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from benchmarks.check_regression import build_parser as regression_parser
from benchmarks.suite import build_parser as suite_parser
from repro.bench.__main__ import build_parser as bench_parser
from repro.db.__main__ import build_parser as db_parser
from repro.serve.__main__ import build_parser as serve_parser

REPO = Path(__file__).resolve().parent.parent
README = REPO / "README.md"
BENCH_DOC = REPO / "docs" / "benchmarks.md"
DESIGN = REPO / "DESIGN.md"

FLAG = re.compile(r"(?<![\w-])(--[a-z][a-z0-9-]*)")

#: The flags the README is required to document (PR-7 acceptance, plus
#: the PR-8 serving CLI and the PR-10 replica tier).
REQUIRED_IN_README = {
    "--parallel",
    "--columnar",
    "--optimize",
    "--explain",
    "--data-dir",
    "--durability",
    "--port",
    "--workers",
    "--request-timeout",
    "--cache-size",
    "--replicas",
}


def documented_flags(path: Path) -> set[str]:
    return set(FLAG.findall(path.read_text()))


def real_flags() -> set[str]:
    flags: set[str] = set()
    for parser in (
        db_parser(),
        serve_parser(),
        suite_parser(),
        regression_parser(),
        bench_parser(),
    ):
        for action in parser._actions:
            flags.update(s for s in action.option_strings if s.startswith("--"))
    return flags


def test_front_door_documents_exist():
    assert README.is_file(), "README.md is the repository's front door"
    assert BENCH_DOC.is_file(), "docs/benchmarks.md is the methodology page"
    design = DESIGN.read_text()
    assert "## §13" in design, "DESIGN.md must cover the suite (§13)"
    assert "## §14" in design, "DESIGN.md must cover the query service (§14)"
    assert "## §15" in design, "DESIGN.md must cover the columnar engine (§15)"
    assert "## §16" in design, "DESIGN.md must cover the read-replica tier (§16)"


@pytest.mark.parametrize("path", [README, BENCH_DOC], ids=lambda p: p.name)
def test_every_documented_flag_is_real(path):
    ghosts = documented_flags(path) - real_flags()
    assert not ghosts, f"{path.name} documents flags that do not exist: {sorted(ghosts)}"


def test_readme_documents_the_required_flags():
    missing = REQUIRED_IN_README - documented_flags(README)
    assert not missing, f"README.md must document: {sorted(missing)}"


def test_readme_points_to_the_methodology_page():
    text = README.read_text()
    assert "docs/benchmarks.md" in text
    assert "benchmarks.suite" in text


def test_design_cross_links_the_methodology_page():
    assert "docs/benchmarks.md" in DESIGN.read_text()
