"""Tests for the command-line entry points (repro.db, repro.bench)."""

from __future__ import annotations

import pytest

from repro.bench.__main__ import main as bench_main
from repro.db import load_json, save_csv, save_json
from repro.db.__main__ import main as db_main


@pytest.fixture
def relation_files(rel_a, rel_c, tmp_path):
    a_path = tmp_path / "a.csv"
    c_path = tmp_path / "c.json"
    save_csv(rel_a, a_path)
    save_json(rel_c, c_path)
    return a_path, c_path


class TestDbCli:
    def test_query_to_stdout(self, relation_files, capsys):
        a_path, c_path = relation_files
        code = db_main(
            ["--load", f"a={a_path}", "--load", f"c={c_path}", "--query", "a & c"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "a1∧c1" in out

    def test_explain(self, relation_files, capsys):
        a_path, c_path = relation_files
        code = db_main(
            ["--load", f"a={a_path}", "--load", f"c={c_path}", "--explain", "a - c"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Except[LAWA]" in out
        assert "PTIME" in out

    def test_algorithm_option(self, relation_files, capsys):
        a_path, c_path = relation_files
        code = db_main(
            [
                "--load",
                f"a={a_path}",
                "--load",
                f"c={c_path}",
                "--query",
                "a & c",
                "--algorithm",
                "NORM",
            ]
        )
        assert code == 0

    def test_output_json(self, relation_files, tmp_path, capsys):
        a_path, c_path = relation_files
        out_path = tmp_path / "result.json"
        db_main(
            [
                "--load",
                f"a={a_path}",
                "--load",
                f"c={c_path}",
                "--query",
                "a | c",
                "--out",
                str(out_path),
            ]
        )
        result = load_json(out_path)
        assert len(result) == 9  # Fig. 3 union row count

    def test_apply_delta_before_query(self, relation_files, tmp_path, capsys):
        a_path, c_path = relation_files
        delta = tmp_path / "delta.csv"
        delta.write_text(
            "op,product,ts,te,p\n"
            "+,beer,1,6,0.5\n"
            "-,chips,4,7,\n"
        )
        code = db_main(
            [
                "--load", f"a={a_path}",
                "--load", f"c={c_path}",
                "--apply", f"a={delta}",
                "--query", "a | a",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "applied delta.csv to a: +1 -1" in out
        assert "beer" in out and "chips" not in out

    def test_apply_unknown_relation_rejected(self, relation_files, tmp_path):
        a_path, _ = relation_files
        delta = tmp_path / "delta.csv"
        delta.write_text("op,product,ts,te,p\n+,beer,1,6,0.5\n")
        with pytest.raises(SystemExit, match="no loaded relation"):
            db_main(["--load", f"a={a_path}", "--apply", f"nope={delta}",
                     "--query", "a"])

    def test_bad_apply_spec(self, relation_files):
        a_path, _ = relation_files
        with pytest.raises(SystemExit):
            db_main(["--load", f"a={a_path}", "--apply", "just-a-path.csv",
                     "--query", "a"])

    def test_bad_load_spec(self):
        with pytest.raises(SystemExit):
            db_main(["--load", "just-a-path.csv", "--query", "a"])

    def test_bad_format(self, tmp_path):
        bogus = tmp_path / "rel.parquet"
        bogus.write_text("")
        with pytest.raises(SystemExit):
            db_main(["--load", f"r={bogus}", "--query", "r"])

    def test_query_required(self, relation_files):
        a_path, _ = relation_files
        with pytest.raises(SystemExit):
            db_main(["--load", f"a={a_path}"])


class TestDbCliParallel:
    """--parallel N: bit-identical results through the worker pool."""

    def _roundtrip(self, relation_files, tmp_path, out_name, parallel):
        a_path, c_path = relation_files
        out_path = tmp_path / out_name
        argv = [
            "--load", f"a={a_path}",
            "--load", f"c={c_path}",
            "--query", "a | c",
            "--out", str(out_path),
        ]
        if parallel is not None:
            argv += ["--parallel", str(parallel)]
        code = db_main(argv)
        assert code == 0
        return out_path

    def test_parallel_json_roundtrip_matches_serial(self, relation_files, tmp_path, capsys):
        serial_path = self._roundtrip(relation_files, tmp_path, "serial.json", None)
        parallel_path = self._roundtrip(relation_files, tmp_path, "parallel.json", 2)
        serial = load_json(serial_path)
        parallel = load_json(parallel_path)
        assert len(parallel) == len(serial) == 9  # Fig. 3 union row count
        assert parallel.equivalent_to(serial.rename(parallel.name), tol=0.0)

    def test_parallel_csv_roundtrip_matches_serial(self, relation_files, tmp_path, capsys):
        serial_path = self._roundtrip(relation_files, tmp_path, "serial.csv", None)
        parallel_path = self._roundtrip(relation_files, tmp_path, "parallel.csv", 4)
        assert serial_path.read_text() == parallel_path.read_text()

    def test_parallel_with_apply_delta(self, relation_files, tmp_path, capsys):
        a_path, c_path = relation_files
        delta = tmp_path / "delta.csv"
        delta.write_text(
            "op,product,ts,te,p\n"
            "+,beer,1,6,0.5\n"
            "-,chips,4,7,\n"
        )
        out_path = tmp_path / "result.json"
        code = db_main(
            [
                "--load", f"a={a_path}",
                "--load", f"c={c_path}",
                "--apply", f"a={delta}",
                "--query", "a | a",
                "--parallel", "2",
                "--out", str(out_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "applied delta.csv to a: +1 -1" in out
        result = load_json(out_path)
        facts = {t.fact[0] for t in result}
        assert "beer" in facts and "chips" not in facts

    def test_parallel_zero_rejected(self, relation_files, capsys):
        a_path, _ = relation_files
        with pytest.raises(SystemExit):
            db_main(
                ["--load", f"a={a_path}", "--query", "a", "--parallel", "0"]
            )
        assert "positive worker count" in capsys.readouterr().err

    def test_parallel_negative_rejected(self, relation_files, capsys):
        a_path, _ = relation_files
        with pytest.raises(SystemExit):
            db_main(
                ["--load", f"a={a_path}", "--query", "a", "--parallel", "-3"]
            )
        assert "positive worker count" in capsys.readouterr().err


class TestDbCliOptimize:
    """--optimize {off,safe,aggressive} and the EXPLAIN query prefix."""

    def _out(self, relation_files, tmp_path, name, *extra):
        a_path, c_path = relation_files
        out_path = tmp_path / name
        code = db_main(
            [
                "--load", f"a={a_path}",
                "--load", f"c={c_path}",
                "--query", "(a | c)[product='milk'] - c",
                "--out", str(out_path),
                *extra,
            ]
        )
        assert code == 0
        return out_path

    def test_safe_output_identical_to_off(self, relation_files, tmp_path, capsys):
        off = self._out(relation_files, tmp_path, "off.csv")
        safe = self._out(relation_files, tmp_path, "safe.csv", "--optimize", "safe")
        assert off.read_text() == safe.read_text()

    def test_aggressive_accepted(self, relation_files, tmp_path, capsys):
        aggressive = self._out(
            relation_files, tmp_path, "aggressive.json", "--optimize", "aggressive"
        )
        assert load_json(aggressive)  # parses and is non-empty

    def test_invalid_level_rejected(self, relation_files, capsys):
        a_path, _ = relation_files
        with pytest.raises(SystemExit):
            db_main(
                ["--load", f"a={a_path}", "--query", "a", "--optimize", "fast"]
            )
        err = capsys.readouterr().err
        assert "--optimize must be one of off, safe, aggressive" in err
        assert "'fast'" in err

    def test_empty_level_rejected(self, relation_files, capsys):
        a_path, _ = relation_files
        with pytest.raises(SystemExit):
            db_main(["--load", f"a={a_path}", "--query", "a", "--optimize", ""])
        assert "must be one of off, safe, aggressive" in capsys.readouterr().err

    def test_explain_prefix_prints_report(self, relation_files, capsys):
        a_path, c_path = relation_files
        code = db_main(
            [
                "--load", f"a={a_path}",
                "--load", f"c={c_path}",
                "--query", "EXPLAIN a & c",
                "--optimize", "safe",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "optimizer: safe" in out
        assert "est rows=" in out
        assert "actual rows=" in out  # the prefix form runs the plan

    def test_explain_flag_reports_level(self, relation_files, capsys):
        a_path, c_path = relation_files
        code = db_main(
            [
                "--load", f"a={a_path}",
                "--load", f"c={c_path}",
                "--explain", "(a | c)[product='milk']",
                "--optimize", "safe",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "optimizer: safe — plan " in out
        assert "Select[product='milk']" in out  # pushdown visible in the plan


class TestBenchCli:
    def test_table2_only(self, tmp_path, capsys):
        code = bench_main(["table2", "--outdir", str(tmp_path)])
        assert code == 0
        assert (tmp_path / "table2.txt").exists()
        assert "LAWA" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            bench_main(["fig99", "--outdir", str(tmp_path)])


class TestDbCliExplainOut:
    def test_explain_query_with_out_rejected(self, relation_files, tmp_path, capsys):
        a_path, _ = relation_files
        out_path = tmp_path / "result.json"
        with pytest.raises(SystemExit):
            db_main(
                [
                    "--load", f"a={a_path}",
                    "--query", "EXPLAIN a | a",
                    "--out", str(out_path),
                ]
            )
        assert "cannot be combined with an EXPLAIN query" in capsys.readouterr().err
        assert not out_path.exists()
