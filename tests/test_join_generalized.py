"""Correctness of the generalized-window joins (outer & anti).

Three layers of ground truth:

1. the **naive sweepline baseline** (`repro.baselines.naive_join`) — an
   independent elementary-segment implementation the kernel must match
   tuple-for-tuple (facts, intervals, syntactic lineage, probabilities);
2. **possible-worlds enumeration** — at sampled time points, every
   output probability must equal the summed probability of the worlds
   whose deterministic snapshot join contains the fact, and absent
   (fact, point) combinations must have zero marginal;
3. **algebraic identities** — anti join on all attributes coincides with
   −ᵀᵖ, degenerate layouts collapse to projections/union.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings

from repro import (
    TPRelation,
    tp_anti_join,
    tp_except,
    tp_full_outer_join,
    tp_join,
    tp_join_operation,
    tp_left_outer_join,
    tp_right_outer_join,
    tp_union,
)
from repro.algebra.join import JOIN_KINDS, _disambiguate
from repro.baselines import get_join_algorithm, naive_join_operation
from repro.core.errors import UnsupportedOperationError
from repro.core.sorting import null_safe_key
from repro.lineage import is_one_occurrence_form
from repro.semantics import join_marginal_via_worlds

from .strategies import tp_join_pair, tp_relation_pair

KINDS = sorted(JOIN_KINDS)

relaxed = settings(
    max_examples=40, suppress_health_check=[HealthCheck.too_slow], deadline=None
)


def _rows(relation: TPRelation) -> list[tuple]:
    return [
        (t.fact, t.start, t.end, str(t.lineage), None if t.p is None else round(t.p, 9))
        for t in sorted(relation, key=null_safe_key)
    ]


@pytest.mark.parametrize("kind", KINDS)
class TestAgainstNaiveBaseline:
    @relaxed
    @given(pair=tp_join_pair())
    def test_matches_naive_sweepline(self, kind, pair):
        r, s = pair
        kernel = tp_join_operation(kind, r, s, on=("k",))
        naive = naive_join_operation(kind, r, s, on=("k",))
        assert _rows(kernel) == _rows(naive)
        assert kernel.schema.attributes == naive.schema.attributes

    @relaxed
    @given(pair=tp_join_pair(s_rest=False))
    def test_matches_naive_on_degenerate_right_side(self, kind, pair):
        """The right side is key-only: matched and preserved facts
        coincide and the layouts must collapse identically."""
        r, s = pair
        kernel = tp_join_operation(kind, r, s, on=("k",))
        naive = naive_join_operation(kind, r, s, on=("k",))
        assert _rows(kernel) == _rows(naive)

    @relaxed
    @given(pair=tp_join_pair())
    def test_output_duplicate_free_and_change_preserved(self, kind, pair):
        r, s = pair
        result = tp_join_operation(kind, r, s, on=("k",))
        ordered = sorted(result, key=null_safe_key)
        for prev, curr in zip(ordered, ordered[1:]):
            if prev.fact != curr.fact:
                continue
            assert curr.start >= prev.end, "output not duplicate-free"
            if curr.start == prev.end:
                assert curr.lineage is not prev.lineage, "intervals not maximal"

    @relaxed
    @given(pair=tp_join_pair())
    def test_lineage_in_1of(self, kind, pair):
        """One join over base relations keeps lineage in 1OF — matched
        pairs and negated disjunctions never repeat a variable."""
        r, s = pair
        for t in tp_join_operation(kind, r, s, on=("k",)):
            assert is_one_occurrence_form(t.lineage)


@pytest.mark.parametrize("kind", KINDS)
class TestPossibleWorlds:
    @settings(max_examples=25, deadline=None)
    @given(pair=tp_join_pair(max_facts=2, max_intervals=1))
    def test_probabilities_match_world_enumeration(self, kind, pair):
        r, s = pair
        if len(r.events) + len(s.events) > 8:
            return  # keep 2^n enumeration cheap
        result = tp_join_operation(kind, r, s, on=("k",))
        for t in result:
            for point in (t.start, t.end - 1):
                expected = join_marginal_via_worlds(kind, r, s, ("k",), t.fact, point)
                assert t.p == pytest.approx(expected, abs=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(pair=tp_join_pair(max_facts=2, max_intervals=1))
    def test_absent_points_have_zero_marginal(self, kind, pair):
        r, s = pair
        if len(r.events) + len(s.events) > 8:
            return
        result = tp_join_operation(kind, r, s, on=("k",))
        span_points = set()
        for u in list(r) + list(s):
            span_points.update(range(u.start, u.end))
        present = {
            (u.fact, point) for u in result for point in range(u.start, u.end)
        }
        for fact in {u.fact for u in result}:
            for point in span_points:
                if (fact, point) not in present:
                    assert join_marginal_via_worlds(
                        kind, r, s, ("k",), fact, point
                    ) == pytest.approx(0.0, abs=1e-12)


class TestAlgebraicIdentities:
    @settings(max_examples=40, deadline=None)
    @given(pair=tp_relation_pair())
    def test_anti_join_on_all_attributes_is_except(self, pair):
        """▷ᵀᵖ over the full schema coincides with −ᵀᵖ (both emit
        andNot lineage over the same window structure)."""
        r, s = pair
        anti = tp_anti_join(r, s, on=("fact",))
        diff = tp_except(r, s)
        assert anti.equivalent_to(diff)

    @settings(max_examples=40, deadline=None)
    @given(pair=tp_join_pair())
    def test_left_outer_covers_left_exactly(self, pair):
        """Every left point survives in a left outer join, and no
        right-only point appears."""
        r, s = pair
        result = tp_left_outer_join(r, s, on=("k",))
        left_points = {(t.fact, p) for t in r for p in range(t.start, t.end)}
        out_points = {
            (t.fact[:2], p) for t in result for p in range(t.start, t.end)
        }
        assert out_points == left_points

    @settings(max_examples=40, deadline=None)
    @given(pair=tp_join_pair())
    def test_full_outer_mirror_symmetry(self, pair):
        """r ⟗ s and s ⟗ r cover the same (key, time) points."""
        r, s = pair
        forward = tp_full_outer_join(r, s, on=("k",))
        backward = tp_full_outer_join(s, r, on=("k",))
        fwd = {(t.fact[0], p) for t in forward for p in range(t.start, t.end)}
        bwd = {(t.fact[0], p) for t in backward for p in range(t.start, t.end)}
        assert fwd == bwd


class TestEdgeCases:
    def _r(self):
        return TPRelation.from_rows(
            "r", ("k", "a"), [("k1", "x", 0, 5, 0.5), ("k2", "y", 2, 6, 0.4)]
        )

    def _empty(self, attributes):
        from repro import TPSchema

        return TPRelation("e", TPSchema(attributes), [], {})

    def test_left_outer_with_empty_right_preserves_all(self):
        r = self._r()
        result = tp_left_outer_join(r, self._empty(("k", "b")), on=("k",))
        assert _rows(result) == [
            (("k1", "x", None), 0, 5, "r1", 0.5),
            (("k2", "y", None), 2, 6, "r2", 0.4),
        ]

    def test_anti_with_empty_right_is_left(self):
        r = self._r()
        result = tp_anti_join(r, self._empty(("k", "b")), on=("k",))
        assert result.equivalent_to(r)

    def test_inner_with_empty_side_is_empty(self):
        r = self._r()
        assert len(tp_join(r, self._empty(("k", "b")), on=("k",))) == 0
        assert len(tp_join(self._empty(("k", "b")), r, on=("k",))) == 0

    def test_full_outer_with_empty_left_preserves_right(self):
        s = TPRelation.from_rows("s", ("k", "b"), [("k1", 7, 1, 4, 0.8)])
        result = tp_full_outer_join(self._empty(("k", "a")), s, on=("k",))
        assert _rows(result) == [(("k1", None, 7), 1, 4, "s1", 0.8)]

    def test_fully_overlapping_pair(self):
        """Identical intervals: the preserved window covers the whole
        tuple with the partner's negated lineage."""
        r = TPRelation.from_rows("r", ("k", "a"), [("k1", "x", 0, 4, 0.5)])
        s = TPRelation.from_rows("s", ("k", "b"), [("k1", 9, 0, 4, 0.25)])
        result = tp_left_outer_join(r, s, on=("k",))
        assert _rows(result) == [
            (("k1", "x", 9), 0, 4, "r1∧s1", 0.125),
            (("k1", "x", None), 0, 4, "r1∧¬s1", 0.375),
        ]

    def test_anti_join_fully_overlapping_is_negation(self):
        r = TPRelation.from_rows("r", ("k", "a"), [("k1", "x", 0, 4, 0.5)])
        s = TPRelation.from_rows("s", ("k", "b"), [("k1", 9, 0, 4, 0.25)])
        result = tp_anti_join(r, s, on=("k",))
        assert _rows(result) == [(("k1", "x"), 0, 4, "r1∧¬s1", 0.375)]

    def test_concurrent_matches_negate_disjunction(self):
        """Two right tuples valid at once: ¬(s1∨s2) in one window."""
        r = TPRelation.from_rows("r", ("k", "a"), [("k1", "x", 0, 4, 0.5)])
        s = TPRelation.from_rows(
            "s", ("k", "b"), [("k1", 1, 0, 4, 0.5), ("k1", 2, 0, 4, 0.5)]
        )
        result = tp_anti_join(r, s, on=("k",))
        assert _rows(result) == [(("k1", "x"), 0, 4, "r1∧¬(s1∨s2)", 0.125)]


class TestDegenerateLayouts:
    def test_left_outer_against_key_only_right_is_left(self):
        r = TPRelation.from_rows("r", ("k", "a"), [("k1", "x", 0, 5, 0.5)])
        s = TPRelation.from_rows("s", ("k",), [("k1", 2, 4, 0.8)])
        result = tp_left_outer_join(r, s, on=("k",))
        assert result.schema.attributes == ("k", "a")
        assert result.equivalent_to(r)

    def test_right_outer_of_key_only_left_is_right_projection(self):
        r = TPRelation.from_rows("r", ("k",), [("k1", 0, 2, 0.5)])
        s = TPRelation.from_rows("s", ("k", "b"), [("k1", 7, 1, 4, 0.8)])
        result = tp_right_outer_join(r, s, on=("k",))
        assert result.schema.attributes == ("k", "b")
        assert _rows(result) == [(("k1", 7), 1, 4, "s1", 0.8)]

    def test_full_outer_of_key_only_sides_is_union(self):
        r = TPRelation.from_rows("r", ("k",), [("k1", 0, 3, 0.5)])
        s = TPRelation.from_rows("s", ("k",), [("k1", 2, 5, 0.8)])
        result = tp_full_outer_join(r, s, on=("k",))
        assert result.equivalent_to(tp_union(r, s))


class TestDisambiguate:
    def test_three_way_collision(self):
        assert _disambiguate(("a", "a", "a")) == ("a", "a_2", "a_3")

    def test_collision_with_literal_suffix_name(self):
        """A generated suffix must never shadow a literal attribute."""
        assert _disambiguate(("a", "a_2", "a")) == ("a", "a_2", "a_3")
        assert _disambiguate(("a", "a", "a_2")) == ("a", "a_3", "a_2")

    def test_four_way_collision_deterministic(self):
        assert _disambiguate(("x", "x", "x", "x")) == ("x", "x_2", "x_3", "x_4")

    def test_no_collision_is_identity(self):
        assert _disambiguate(("a", "b", "c")) == ("a", "b", "c")

    def test_join_schema_with_triple_name_clash(self):
        r = TPRelation.from_rows(
            "r", ("item", "price", "price_2"), [("milk", 1, 2, 1, 5, 0.5)]
        )
        s = TPRelation.from_rows(
            "s", ("item", "price"), [("milk", 3, 3, 8, 0.5)]
        )
        result = tp_join(r, s, on=("item",))
        assert result.schema.attributes == ("item", "price", "price_2", "price_3")


class TestJoinRegistry:
    def test_kernel_and_naive_registered(self):
        assert get_join_algorithm("GTWINDOW").name == "GTWINDOW"
        assert get_join_algorithm("naive-sweep").name == "NAIVE-SWEEP"

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(UnsupportedOperationError):
            get_join_algorithm("GHOST")

    def test_unknown_kind_rejected(self):
        r = TPRelation.from_rows("r", ("k",), [("k1", 0, 2, 0.5)])
        with pytest.raises(UnsupportedOperationError):
            tp_join_operation("semi", r, r)

    def test_algorithms_agree_through_registry(self):
        r = TPRelation.from_rows("r", ("k", "a"), [("k1", "x", 0, 5, 0.5)])
        s = TPRelation.from_rows("s", ("k", "b"), [("k1", 7, 2, 8, 0.8)])
        for kind in KINDS:
            kernel = get_join_algorithm("GTWINDOW").compute(kind, r, s, on=("k",))
            naive = get_join_algorithm("NAIVE-SWEEP").compute(kind, r, s, on=("k",))
            assert _rows(kernel) == _rows(naive)
