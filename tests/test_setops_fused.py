"""Fused-kernel equivalence, sortedness propagation, sorting contract.

The fused kernel (DESIGN.md §6) must be **bit-identical** to the unfused
LawaSweep-driven reference path: same facts, same intervals, the *same
interned lineage objects*, same probabilities.  These tests pin that, plus
the sortedness flag carried by set-operation outputs and the strengthened
deterministic contract of the two sorting strategies (DESIGN.md §6.2).
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Interval, TPRelation, TPSchema
from repro.core.setops import tp_except, tp_intersect, tp_set_operation, tp_union
from repro.core.sorting import is_sorted, sort_comparison, sort_counting
from repro.core.tuple import TPTuple
from repro.lineage import Var
from tests.strategies import tp_relation_pair

OPS = [tp_union, tp_intersect, tp_except]


def assert_bit_identical(x: TPRelation, y: TPRelation) -> None:
    assert len(x) == len(y)
    for t, u in zip(x, y):
        assert t.fact == u.fact
        assert t.interval == u.interval
        assert t.lineage is u.lineage  # interned: identity, not just equality
        assert t.p == u.p  # exact float equality, not approx


class TestFusedEqualsUnfused:
    @settings(max_examples=60, deadline=None)
    @given(tp_relation_pair())
    def test_random_relations(self, pair):
        r, s = pair
        for op in OPS:
            assert_bit_identical(
                op(r, s, fused=True), op(r, s, fused=False)
            )

    @settings(max_examples=25, deadline=None)
    @given(tp_relation_pair())
    def test_unmaterialized(self, pair):
        r, s = pair
        for op in OPS:
            assert_bit_identical(
                op(r, s, materialize=False, fused=True),
                op(r, s, materialize=False, fused=False),
            )

    @settings(max_examples=15, deadline=None)
    @given(tp_relation_pair(), tp_relation_pair())
    def test_chained_operations(self, pair1, pair2):
        """Derived inputs carry non-atomic lineages (Or/And/Not nodes) —
        the kernel's fast concatenation paths must still flatten like the
        smart constructors do."""
        (r, s), (t, _) = pair1, pair2
        for inner in OPS:
            base_f = inner(r, s, materialize=False, fused=True)
            base_u = inner(r, s, materialize=False, fused=False)
            for outer in OPS:
                assert_bit_identical(
                    outer(base_f, t, fused=True),
                    outer(base_u, t, fused=False),
                )

    def test_paper_example_all_ops(self):
        a = TPRelation.from_rows(
            "a", ("product",),
            [("milk", 2, 10, 0.3), ("chips", 4, 7, 0.8), ("dates", 1, 3, 0.6)],
        )
        c = TPRelation.from_rows(
            "c", ("product",),
            [("milk", 1, 4, 0.6), ("milk", 6, 8, 0.7),
             ("chips", 4, 5, 0.7), ("chips", 7, 9, 0.8)],
        )
        for name in ("union", "intersect", "except"):
            assert_bit_identical(
                tp_set_operation(name, c, a, fused=True),
                tp_set_operation(name, c, a, fused=False),
            )


class TestSortednessPropagation:
    def _pair(self):
        r = TPRelation.from_rows(
            "r", ("x",), [("v", 5, 9, 0.4), ("v", 1, 3, 0.5), ("w", 2, 6, 0.6)]
        )
        s = TPRelation.from_rows(
            "s", ("x",), [("v", 2, 7, 0.3), ("w", 4, 8, 0.9)]
        )
        return r, s

    def test_outputs_are_born_sorted(self):
        r, s = self._pair()
        for op in OPS:
            result = op(r, s)
            assert result.is_sorted_by_fact_ts
            assert is_sorted(result.sorted_tuples())

    def test_base_relations_discover_sortedness_lazily(self):
        r, _ = self._pair()
        assert not r.is_sorted_by_fact_ts  # insertion order is shuffled
        r.sorted_tuples()
        assert not r.is_sorted_by_fact_ts  # still a different order

    def test_assume_sorted_skips_the_sort(self):
        tuples = [
            TPTuple(("v",), Var("e1"), Interval(1, 3), 0.5),
            TPTuple(("v",), Var("e2"), Interval(4, 6), 0.5),
        ]
        rel = TPRelation(
            "pre", TPSchema(("x",)), tuples, {"e1": 0.5, "e2": 0.5},
            assume_sorted=True,
        )
        assert rel.is_sorted_by_fact_ts
        assert [t.lineage for t in rel.sorted_tuples()] == [Var("e1"), Var("e2")]

    def test_sorted_cache_survives_rename_and_materialize(self):
        r, s = self._pair()
        result = tp_union(r, s, materialize=False)
        assert result.rename("q").is_sorted_by_fact_ts
        assert result.materialize_probabilities().is_sorted_by_fact_ts


def _raw_stream(rng: random.Random, n: int) -> list[TPTuple]:
    """A raw, not-yet-deduplicated stream: duplicate (fact, Ts) allowed."""
    out = []
    for i in range(n):
        fact = (rng.choice("xyz"),)
        start = rng.randint(0, 6)
        end = start + rng.randint(1, 5)
        out.append(TPTuple(fact, Var(f"raw{i}"), Interval(start, end)))
    return out


class TestSortingContract:
    def test_strategies_agree_on_raw_streams(self):
        rng = random.Random(7)
        for _ in range(300):
            stream = _raw_stream(rng, rng.randint(0, 14))
            assert sort_comparison(stream) == sort_counting(stream)

    def test_ties_broken_by_te_then_input_order(self):
        t_long = TPTuple(("x",), Var("t1"), Interval(2, 9))
        t_short = TPTuple(("x",), Var("t2"), Interval(2, 4))
        t_short2 = TPTuple(("x",), Var("t3"), Interval(2, 4))
        stream = [t_long, t_short, t_short2]
        expected = [t_short, t_short2, t_long]
        assert sort_comparison(stream) == expected
        assert sort_counting(stream) == expected

    def test_relation_sorted_tuples_matches_sort_comparison(self):
        # The default set-operation path sorts through the relation's
        # cache; its tie-breaking must match the explicit strategies.
        tuples = [
            TPTuple(("x",), Var("c1"), Interval(5, 10)),
            TPTuple(("x",), Var("c2"), Interval(5, 7)),
            TPTuple(("x",), Var("c3"), Interval(1, 4)),
        ]
        rel = TPRelation(
            "raw", TPSchema(("x",)), tuples,
            {"c1": 0.5, "c2": 0.5, "c3": 0.5}, validate=False,
        )
        assert rel.sorted_tuples() == sort_comparison(tuples) == sort_counting(tuples)

    def test_sparse_fallback_keeps_the_contract(self):
        # Huge start spread forces sort_counting's comparison fallback.
        stream = [
            TPTuple(("x",), Var("s1"), Interval(1_000_000, 1_000_002)),
            TPTuple(("x",), Var("s2"), Interval(0, 5)),
            TPTuple(("x",), Var("s3"), Interval(0, 2)),
        ]
        assert sort_counting(stream) == sort_comparison(stream)

    def test_is_sorted_uses_the_full_key(self):
        # A raw stream with a Te inversion at a tied (F, Ts) must not be
        # accepted as sorted, since the sorters would reorder it.
        stream = [
            TPTuple(("x",), Var("k1"), Interval(0, 9)),
            TPTuple(("x",), Var("k2"), Interval(0, 3)),
        ]
        assert not is_sorted(stream)
        assert is_sorted(sort_comparison(stream))

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_agreement_is_seed_independent(self, seed):
        rng = random.Random(seed)
        stream = _raw_stream(rng, rng.randint(0, 20))
        assert sort_comparison(stream) == sort_counting(stream)
