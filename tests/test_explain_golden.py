"""Golden-file tests pinning the ``EXPLAIN`` rendering.

Each case renders the full report — chosen plan, per-node estimate
fields, actual row counts under ``analyze=True``, the optimizer header,
the static analysis — against the paper's Fig. 1 relations and compares
it byte-for-byte with a committed golden file, so any plan or estimate
regression shows up as a readable diff.

Regenerate after an intentional change with::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_explain_golden.py

The databases are constructed with ``parallel=1`` so the worker-aware
cost terms are pinned to the serial model whatever ``REPRO_PARALLEL``
the suite runs under.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.db import TPDatabase

GOLDEN_DIR = Path(__file__).parent / "golden"
UPDATE = os.environ.get("REPRO_UPDATE_GOLDEN") == "1"


def build_db() -> TPDatabase:
    db = TPDatabase(parallel=1)
    db.create_relation(
        "a",
        ("product",),
        [("milk", 2, 10, 0.3), ("chips", 4, 7, 0.8), ("dates", 1, 3, 0.6)],
    )
    db.create_relation(
        "b", ("product",), [("milk", 5, 9, 0.6), ("chips", 3, 6, 0.9)]
    )
    db.create_relation(
        "c",
        ("product",),
        [
            ("milk", 1, 4, 0.6),
            ("milk", 6, 8, 0.7),
            ("chips", 4, 5, 0.7),
            ("chips", 7, 9, 0.8),
        ],
    )
    db.create_relation(
        "prices",
        ("product", "price"),
        [("milk", 2, 3, 8, 0.8), ("beer", 1, 0, 5, 0.6)],
    )
    return db


CASES = {
    "paper_query_off": lambda db: db.explain("c - (a | b)", optimize="off"),
    "paper_query_safe_analyze": lambda db: db.explain(
        "c - (a | b)", optimize="safe", analyze=True
    ),
    "pushdown_safe_analyze": lambda db: db.explain(
        "((a | b) | c)[product='milk']", optimize="safe", analyze=True
    ),
    "difference_chain_aggressive": lambda db: db.explain(
        "c - a - b", optimize="aggressive"
    ),  # the model keeps the chain here: fusion only pays on longer chains
    "join_pushdown_safe": lambda db: db.explain(
        "(c JOIN prices ON product)[product='milk']", optimize="safe"
    ),
    "explain_prefix_query": lambda db: db.query(
        "EXPLAIN c - (a | b)", optimize="safe"
    ),
}


@pytest.mark.parametrize("name", sorted(CASES))
def test_explain_matches_golden(name):
    text = CASES[name](build_db())
    assert isinstance(text, str)
    path = GOLDEN_DIR / f"{name}.txt"
    if UPDATE:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(text + "\n")
    expected = path.read_text()
    assert text + "\n" == expected, (
        f"EXPLAIN output drifted from {path.name}; re-run with "
        f"REPRO_UPDATE_GOLDEN=1 if the change is intentional"
    )


def test_estimate_fields_present():
    """The fields the golden files pin, asserted structurally too (so a
    bulk regeneration cannot silently drop them)."""
    text = build_db().explain("c - (a | b)", optimize="safe", analyze=True)
    assert "optimizer: safe — plan " in text
    assert "est rows=" in text and "cost=" in text
    assert "actual rows=" in text
    assert text.count("actual rows=") >= 4  # every node reports actuals
