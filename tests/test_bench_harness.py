"""Tests for the benchmark harness: runner, report, figure drivers, tables."""

from __future__ import annotations

import math


from repro.baselines import LawaAlgorithm, get_algorithm
from repro.bench import (
    SeriesResult,
    SweepRunner,
    fig7,
    fig9a,
    fig9b,
    fig10,
    fig11,
    lawa_scaling,
    materialization_cost,
    render_scaling,
    render_series,
    sample_relation,
    save_series_csv,
    sort_strategies,
    table2,
    table4,
    time_setop,
    window_bound,
)
from repro.datasets import generate_pair


class TestRunner:
    def test_time_setop_returns_positive(self, rel_a, rel_c):
        seconds, size = time_setop(LawaAlgorithm(), "intersect", rel_a, rel_c)
        assert seconds > 0
        assert size == 3

    def test_budget_truncates_series(self):
        class SlowFake(LawaAlgorithm):
            name = "SLOW"

            def compute(self, op, r, s, *, materialize=True):
                import time

                time.sleep(0.05)
                return super().compute(op, r, s, materialize=materialize)

        result = SeriesResult("Fig. T", "test", "tuples", "intersect")
        points = [
            (float(n), lambda n=n: generate_pair(n, seed=0)) for n in (50, 100, 200)
        ]
        runner = SweepRunner(budget_seconds=0.01)
        runner.run(result, points, [SlowFake()])
        skipped = [m for m in result.measurements if m.skipped]
        assert len(skipped) == 2  # first run exceeds budget, rest skipped
        assert result.notes

    def test_unsupported_ops_not_scheduled(self):
        result = SeriesResult("Fig. T", "test", "tuples", "except")
        points = [(50.0, lambda: generate_pair(50, seed=0))]
        SweepRunner().run(result, points, [get_algorithm("OIP")])
        assert result.measurements == []


class TestReport:
    def test_render_series(self):
        result = SeriesResult("Fig. T", "test", "tuples", "intersect")
        points = [(float(n), lambda n=n: generate_pair(n, seed=0)) for n in (50, 100)]
        SweepRunner().run(result, points, [LawaAlgorithm()])
        text = render_series(result)
        assert "Fig. T" in text
        assert "LAWA" in text
        assert "50" in text and "100" in text

    def test_save_csv(self, tmp_path):
        result = SeriesResult("Fig. T", "test", "tuples", "intersect")
        points = [(50.0, lambda: generate_pair(50, seed=0))]
        SweepRunner().run(result, points, [LawaAlgorithm()])
        out = tmp_path / "series.csv"
        save_series_csv(result, out)
        content = out.read_text()
        assert "approach" in content and "LAWA" in content


class TestFigureDrivers:
    """Smoke runs at tiny sizes: drivers must produce complete series."""

    def test_fig7_intersect(self):
        result = fig7("intersect", sizes=(60, 120), budget_seconds=30)
        series = result.series()
        assert set(series) == {"LAWA", "NORM", "TPDB", "OIP", "TI"}
        assert all(len(points) == 2 for points in series.values())

    def test_fig7_except_participants(self):
        result = fig7("except", sizes=(60,), budget_seconds=30)
        assert set(result.series()) == {"LAWA", "NORM"}

    def test_fig7_union_participants(self):
        result = fig7("union", sizes=(60,), budget_seconds=30)
        assert set(result.series()) == {"LAWA", "NORM", "TPDB"}

    def test_fig8(self):
        from repro.bench import fig8

        result = fig8(sizes=(100, 200), budget_seconds=30)
        assert set(result.series()) == {"LAWA", "OIP"}
        assert all(len(points) == 2 for points in result.series().values())

    def test_fig9a(self):
        result = fig9a(n_tuples=300, budget_seconds=30)
        assert set(result.series()) == {"LAWA", "OIP"}
        assert len(result.series()["LAWA"]) == 5  # the five Table III configs
        assert any("measured OF" in note for note in result.notes)

    def test_fig9b(self):
        result = fig9b(n_tuples=300, fact_counts=(1, 10), budget_seconds=30)
        assert set(result.series()) == {"LAWA", "NORM", "TPDB", "OIP", "TI"}

    def test_fig10(self):
        result = fig10("intersect", sizes=(200, 400), budget_seconds=30)
        assert len(result.series()["LAWA"]) == 2

    def test_fig11(self):
        result = fig11("union", sizes=(200,), budget_seconds=30)
        assert set(result.series()) == {"LAWA", "NORM", "TPDB"}

    def test_sample_relation(self):
        r, _ = generate_pair(100, seed=0)
        sub = sample_relation(r, 10, seed=1)
        assert len(sub) == 10
        assert sample_relation(r, 1000) is r


class TestTables:
    def test_table2(self):
        text = table2()
        assert "LAWA" in text and "TI" in text

    def test_table4(self):
        text = table4(n_tuples=1000, seed=0)
        assert "Cardinality" in text
        assert "10.2M" in text  # the published reference values


class TestAblations:
    def test_lawa_scaling_flat(self):
        points = lawa_scaling(sizes=(1000, 4000), seed=0)
        assert len(points) == 2
        # Linearithmic behaviour: the n·log n ratio stays within a small
        # constant band (allow 4x for noise at tiny sizes).
        ratios = [p.per_nlogn for p in points]
        assert max(ratios) / min(ratios) < 4.0
        assert "ns" in render_scaling(points)

    def test_window_bound_holds(self):
        info = window_bound(n=2000, seed=0)
        assert info["windows"] <= info["bound"]
        assert info["slack"] >= 0

    def test_sort_strategies_both_timed(self):
        timings = sort_strategies(n=5000, seed=0)
        assert set(timings) == {"comparison", "counting"}
        assert all(v > 0 for v in timings.values())

    def test_materialization_cost(self):
        cost = materialization_cost(n=2000, seed=0)
        # Timing noise can make the share slightly negative on fast
        # machines; it must stay finite and below 1.
        assert cost["valuation_share"] <= 1.0
        assert math.isfinite(cost["valuation_share"])
        assert cost["with_probabilities"] > 0
        assert cost["without_probabilities"] > 0
