"""The public epoch-pinned snapshot API (``SegmentStore.snapshot``).

PR 8 formalized the store's ad-hoc epoch-cached snapshot into MVCC
material: ``snapshot()`` pins the current epoch, ``snapshot(epoch=k)``
returns the store exactly as it stood after transaction ``k`` — either
the retained relation a live reader still holds, or a reconstruction by
reverse-replaying the change log.  These tests nail the contract the
serving layer builds on.
"""

from __future__ import annotations

import gc

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import SnapshotUnavailableError
from repro.core.interval import Interval
from repro.core.relation import TPRelation
from repro.core.schema import TPSchema
from repro.core.tuple import TPTuple
from repro.lineage.formula import Var, land
from repro.store import SegmentStore


def _store() -> SegmentStore:
    relation = TPRelation.from_rows(
        "a", ("product",), [("milk", 2, 10, 0.3), ("chips", 4, 7, 0.8)]
    )
    return SegmentStore.from_relation(relation)


def _canonical(relation) -> list:
    rows = [(t.fact, t.start, t.end, str(t.lineage), t.p) for t in relation]
    rows.sort(key=repr)
    return rows


def test_current_snapshot_identity_is_cached():
    store = _store()
    assert store.snapshot() is store.snapshot()
    assert store.snapshot(epoch=store.epoch) is store.snapshot()


def test_historical_epoch_reconstructs_bit_identically():
    store = _store()
    generations = {store.epoch: _canonical(store.snapshot())}
    store.apply(inserts=[("beer", 3, 8, 0.5)])
    generations[store.epoch] = _canonical(store.snapshot())
    store.apply(deletes=[("milk", 2, 10)])
    generations[store.epoch] = _canonical(store.snapshot())
    store.apply(inserts=[("milk", 11, 15, 0.4)])
    generations[store.epoch] = _canonical(store.snapshot())
    gc.collect()  # drop weakly-retained snapshots: force reconstruction
    for epoch, expected in generations.items():
        assert _canonical(store.snapshot(epoch=epoch)) == expected, (
            f"epoch {epoch} did not reconstruct bit-identically"
        )


def test_reconstruction_recovers_removed_event_probabilities():
    store = _store()
    pinned = _canonical(store.snapshot())
    store.apply(deletes=[("chips", 4, 7)])
    gc.collect()
    relation = store.snapshot(epoch=0)
    assert _canonical(relation) == pinned
    # The deleted base tuple's event is present with its original marginal.
    assert relation.events["a2"] == pytest.approx(0.8)


def test_retained_snapshot_is_reused_while_referenced():
    store = _store()
    epoch = store.epoch
    pinned = store.snapshot()
    store.apply(inserts=[("beer", 3, 8, 0.5)])
    assert store.snapshot(epoch=epoch) is pinned
    assert epoch in store.retained_epochs()


def test_future_epoch_is_unavailable():
    store = _store()
    with pytest.raises(SnapshotUnavailableError):
        store.snapshot(epoch=store.epoch + 1)


def test_pruned_epoch_is_unavailable():
    store = _store()
    # Exhaust the unconsumed-log cap so epoch 0 is pruned away.
    for index in range(1100):
        store.apply(inserts=[(f"f{index}", 1, 2, 0.5)])
    gc.collect()
    with pytest.raises(SnapshotUnavailableError):
        store.snapshot(epoch=0)


def test_snapshot_isolation_under_mutation():
    store = _store()
    before = store.snapshot()
    rows_before = _canonical(before)
    store.apply(inserts=[("beer", 3, 8, 0.5)], deletes=[("milk", 2, 10)])
    assert _canonical(before) == rows_before, "pinned snapshot mutated"
    assert _canonical(store.snapshot()) != rows_before


# ----------------------------------------------------------------------
# dropped-event recovery across change sets
# ----------------------------------------------------------------------
def _derived_store() -> SegmentStore:
    """Two base tuples plus a derived tuple referencing both variables."""
    store = SegmentStore("s", ("k",))
    store.insert([("a", 0, 10, 0.5)])   # mints s_n1
    store.insert([("b", 0, 10, 0.25)])  # mints s_n2
    snap = store.snapshot()
    derived = TPTuple(
        ("c",), land(Var("s_n1"), Var("s_n2")), Interval(0, 10), 0.125
    )
    seeded = TPRelation(
        "s",
        TPSchema(("k",)),
        list(snap.sorted_tuples()) + [derived],
        dict(snap.events),
        validate=False,
    )
    return SegmentStore.from_relation(seeded)


def test_recovery_when_drop_deletes_only_derived_tuples():
    """An event dropped by deleting a *derived*-lineage tuple must be
    recovered from elsewhere in the log (the regression the per-change-set
    scan missed: the dropping transaction holds no base tuple for it)."""
    store = _derived_store()
    generations = {store.epoch: _canonical(store.snapshot())}
    store.delete([("a", 0, 10)])  # base tuple of s_n1 leaves; s_n1 lives on
    generations[store.epoch] = _canonical(store.snapshot())
    store.delete([("b", 0, 10)])  # base tuple of s_n2 leaves; s_n2 lives on
    generations[store.epoch] = _canonical(store.snapshot())
    changeset = store.delete([("c", 0, 10)])  # last references vanish
    assert sorted(changeset.removed_events) == ["s_n1", "s_n2"]
    gc.collect()
    for epoch, expected in generations.items():
        relation = store.snapshot(epoch=epoch)
        assert _canonical(relation) == expected
        assert relation.events["s_n1"] == pytest.approx(0.5)
        assert relation.events["s_n2"] == pytest.approx(0.25)


def test_unrecoverable_seeded_event_raises_precisely():
    """An event seeded outside the log, never recorded by any logged
    change set, is unrecoverable — the documented contract."""
    derived = TPTuple(("d",), land(Var("u1"), Var("u2")), Interval(0, 4), 0.1)
    seeded = TPRelation(
        "u", TPSchema(("k",)), [derived], {"u1": 0.4, "u2": 0.9}, validate=False
    )
    store = SegmentStore.from_relation(seeded)
    store.delete([("d", 0, 4)])
    gc.collect()
    with pytest.raises(SnapshotUnavailableError, match="seeded outside"):
        store.snapshot(epoch=0)


@settings(max_examples=40, deadline=None)
@given(
    script=st.lists(
        st.tuples(
            st.sampled_from(["insert", "delete", "reinsert"]),
            st.integers(min_value=0, max_value=4),
        ),
        min_size=1,
        max_size=12,
    )
)
def test_random_delta_scripts_reconstruct_every_epoch(script):
    """Delete-then-delete across epochs, re-inserts, interleaved facts:
    every intermediate epoch must reconstruct bit-identically against the
    oracle snapshot recorded when it was current."""
    store = SegmentStore("h", ("k",))
    live: dict[int, tuple] = {}
    oracles = {store.epoch: _canonical(store.snapshot())}
    for action, slot in script:
        fact = f"f{slot}"
        if action == "insert" and slot not in live:
            live[slot] = (fact, slot * 10, slot * 10 + 5)
            store.insert([(fact, slot * 10, slot * 10 + 5, 0.5)])
        elif action == "delete" and slot in live:
            _, ts, te = live.pop(slot)
            store.delete([(fact, ts, te)])
        elif action == "reinsert":
            if slot in live:
                _, ts, te = live.pop(slot)
                store.delete([(fact, ts, te)])
            live[slot] = (fact, slot * 10, slot * 10 + 5)
            store.insert([(fact, slot * 10, slot * 10 + 5, 0.7)])
        else:
            continue
        oracles[store.epoch] = _canonical(store.snapshot())
    gc.collect()
    for epoch, expected in oracles.items():
        assert _canonical(store.snapshot(epoch=epoch)) == expected, (
            f"epoch {epoch} did not reconstruct bit-identically"
        )
