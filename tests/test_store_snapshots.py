"""The public epoch-pinned snapshot API (``SegmentStore.snapshot``).

PR 8 formalized the store's ad-hoc epoch-cached snapshot into MVCC
material: ``snapshot()`` pins the current epoch, ``snapshot(epoch=k)``
returns the store exactly as it stood after transaction ``k`` — either
the retained relation a live reader still holds, or a reconstruction by
reverse-replaying the change log.  These tests nail the contract the
serving layer builds on.
"""

from __future__ import annotations

import gc

import pytest

from repro.core.errors import SnapshotUnavailableError
from repro.core.relation import TPRelation
from repro.store import SegmentStore


def _store() -> SegmentStore:
    relation = TPRelation.from_rows(
        "a", ("product",), [("milk", 2, 10, 0.3), ("chips", 4, 7, 0.8)]
    )
    return SegmentStore.from_relation(relation)


def _canonical(relation) -> list:
    rows = [(t.fact, t.start, t.end, str(t.lineage), t.p) for t in relation]
    rows.sort(key=repr)
    return rows


def test_current_snapshot_identity_is_cached():
    store = _store()
    assert store.snapshot() is store.snapshot()
    assert store.snapshot(epoch=store.epoch) is store.snapshot()


def test_historical_epoch_reconstructs_bit_identically():
    store = _store()
    generations = {store.epoch: _canonical(store.snapshot())}
    store.apply(inserts=[("beer", 3, 8, 0.5)])
    generations[store.epoch] = _canonical(store.snapshot())
    store.apply(deletes=[("milk", 2, 10)])
    generations[store.epoch] = _canonical(store.snapshot())
    store.apply(inserts=[("milk", 11, 15, 0.4)])
    generations[store.epoch] = _canonical(store.snapshot())
    gc.collect()  # drop weakly-retained snapshots: force reconstruction
    for epoch, expected in generations.items():
        assert _canonical(store.snapshot(epoch=epoch)) == expected, (
            f"epoch {epoch} did not reconstruct bit-identically"
        )


def test_reconstruction_recovers_removed_event_probabilities():
    store = _store()
    pinned = _canonical(store.snapshot())
    store.apply(deletes=[("chips", 4, 7)])
    gc.collect()
    relation = store.snapshot(epoch=0)
    assert _canonical(relation) == pinned
    # The deleted base tuple's event is present with its original marginal.
    assert relation.events["a2"] == pytest.approx(0.8)


def test_retained_snapshot_is_reused_while_referenced():
    store = _store()
    epoch = store.epoch
    pinned = store.snapshot()
    store.apply(inserts=[("beer", 3, 8, 0.5)])
    assert store.snapshot(epoch=epoch) is pinned
    assert epoch in store.retained_epochs()


def test_future_epoch_is_unavailable():
    store = _store()
    with pytest.raises(SnapshotUnavailableError):
        store.snapshot(epoch=store.epoch + 1)


def test_pruned_epoch_is_unavailable():
    store = _store()
    # Exhaust the unconsumed-log cap so epoch 0 is pruned away.
    for index in range(1100):
        store.apply(inserts=[(f"f{index}", 1, 2, 0.5)])
    gc.collect()
    with pytest.raises(SnapshotUnavailableError):
        store.snapshot(epoch=0)


def test_snapshot_isolation_under_mutation():
    store = _store()
    before = store.snapshot()
    rows_before = _canonical(before)
    store.apply(inserts=[("beer", 3, 8, 0.5)], deletes=[("milk", 2, 10)])
    assert _canonical(before) == rows_before, "pinned snapshot mutated"
    assert _canonical(store.snapshot()) != rows_before
