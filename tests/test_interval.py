"""Unit and property tests for the interval algebra."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import AllenRelation, Interval, InvalidIntervalError, allen_relation
from repro.core.interval import OVERLAP_RELATIONS, span


def make_interval(a: int, b: int) -> Interval:
    return Interval(min(a, b), max(a, b)) if a != b else Interval(a, a + 1)


interval_strategy = st.builds(
    make_interval,
    st.integers(min_value=-50, max_value=50),
    st.integers(min_value=-50, max_value=50),
)


class TestConstruction:
    def test_valid(self):
        iv = Interval(2, 10)
        assert iv.start == 2
        assert iv.end == 10
        assert iv.duration == 8

    def test_empty_rejected(self):
        with pytest.raises(InvalidIntervalError):
            Interval(3, 3)

    def test_inverted_rejected(self):
        with pytest.raises(InvalidIntervalError):
            Interval(5, 2)

    def test_str(self):
        assert str(Interval(2, 10)) == "[2,10)"

    def test_ordering_by_start_then_end(self):
        assert Interval(1, 5) < Interval(2, 3)
        assert Interval(1, 3) < Interval(1, 5)

    def test_hashable_and_equal(self):
        assert Interval(1, 2) == Interval(1, 2)
        assert len({Interval(1, 2), Interval(1, 2), Interval(1, 3)}) == 2


class TestPredicates:
    def test_contains_point_half_open(self):
        iv = Interval(2, 5)
        assert iv.contains_point(2)
        assert iv.contains_point(4)
        assert not iv.contains_point(5)
        assert not iv.contains_point(1)

    def test_overlaps(self):
        assert Interval(1, 5).overlaps(Interval(4, 9))
        assert not Interval(1, 5).overlaps(Interval(5, 9))  # half-open touch
        assert not Interval(1, 5).overlaps(Interval(7, 9))

    def test_contains(self):
        assert Interval(1, 10).contains(Interval(3, 4))
        assert Interval(1, 10).contains(Interval(1, 10))
        assert not Interval(1, 10).contains(Interval(0, 4))

    def test_meets(self):
        assert Interval(1, 5).meets(Interval(5, 7))
        assert not Interval(1, 5).meets(Interval(6, 7))

    def test_adjacent_or_overlapping(self):
        assert Interval(1, 5).adjacent_or_overlapping(Interval(5, 7))
        assert Interval(5, 7).adjacent_or_overlapping(Interval(1, 5))
        assert not Interval(1, 5).adjacent_or_overlapping(Interval(6, 7))


class TestConstructive:
    def test_intersect(self):
        assert Interval(2, 10).intersect(Interval(5, 12)) == Interval(5, 10)
        assert Interval(2, 5).intersect(Interval(5, 8)) is None

    def test_union(self):
        assert Interval(1, 5).union(Interval(5, 9)) == Interval(1, 9)
        with pytest.raises(InvalidIntervalError):
            Interval(1, 5).union(Interval(6, 9))

    def test_minus_middle(self):
        assert Interval(1, 10).minus(Interval(4, 6)) == (
            Interval(1, 4),
            Interval(6, 10),
        )

    def test_minus_disjoint(self):
        assert Interval(1, 5).minus(Interval(7, 9)) == (Interval(1, 5),)

    def test_minus_covering(self):
        assert Interval(3, 4).minus(Interval(1, 10)) == ()

    def test_split_at(self):
        assert Interval(1, 10).split_at(4) == (Interval(1, 4), Interval(4, 10))
        assert Interval(1, 10).split_at(1) == (Interval(1, 10),)
        assert Interval(1, 10).split_at(10) == (Interval(1, 10),)

    def test_shift(self):
        assert Interval(1, 4).shift(10) == Interval(11, 14)

    def test_points(self):
        assert list(Interval(3, 6).points()) == [3, 4, 5]

    def test_span(self):
        assert span([Interval(5, 7), Interval(1, 3)]) == Interval(1, 7)
        assert span([]) is None


class TestAllen:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            ((1, 3), (5, 7), AllenRelation.BEFORE),
            ((1, 3), (3, 7), AllenRelation.MEETS),
            ((1, 5), (3, 7), AllenRelation.OVERLAPS),
            ((1, 3), (1, 7), AllenRelation.STARTS),
            ((2, 5), (1, 7), AllenRelation.DURING),
            ((4, 7), (1, 7), AllenRelation.FINISHES),
            ((1, 7), (1, 7), AllenRelation.EQUAL),
            ((5, 7), (1, 3), AllenRelation.AFTER),
            ((3, 7), (1, 3), AllenRelation.MET_BY),
            ((3, 7), (1, 5), AllenRelation.OVERLAPPED_BY),
            ((1, 7), (1, 3), AllenRelation.STARTED_BY),
            ((1, 7), (2, 5), AllenRelation.CONTAINS),
            ((1, 7), (4, 7), AllenRelation.FINISHED_BY),
        ],
    )
    def test_cases(self, a, b, expected):
        assert allen_relation(Interval(*a), Interval(*b)) is expected

    @given(interval_strategy, interval_strategy)
    def test_exactly_one_relation(self, a, b):
        relation = allen_relation(a, b)
        assert isinstance(relation, AllenRelation)

    @given(interval_strategy, interval_strategy)
    def test_overlap_relations_match_predicate(self, a, b):
        relation = allen_relation(a, b)
        assert (relation in OVERLAP_RELATIONS) == a.overlaps(b)

    @given(interval_strategy, interval_strategy)
    def test_inverse_symmetry(self, a, b):
        inverse = {
            AllenRelation.BEFORE: AllenRelation.AFTER,
            AllenRelation.MEETS: AllenRelation.MET_BY,
            AllenRelation.OVERLAPS: AllenRelation.OVERLAPPED_BY,
            AllenRelation.STARTS: AllenRelation.STARTED_BY,
            AllenRelation.DURING: AllenRelation.CONTAINS,
            AllenRelation.FINISHES: AllenRelation.FINISHED_BY,
            AllenRelation.EQUAL: AllenRelation.EQUAL,
        }
        full_inverse = dict(inverse)
        full_inverse.update({v: k for k, v in inverse.items()})
        assert allen_relation(b, a) is full_inverse[allen_relation(a, b)]

    @given(interval_strategy, interval_strategy)
    def test_intersect_consistent_with_overlaps(self, a, b):
        overlap = a.intersect(b)
        assert (overlap is not None) == a.overlaps(b)
        if overlap is not None:
            assert a.contains(overlap)
            assert b.contains(overlap)

    @given(interval_strategy, interval_strategy)
    def test_minus_partitions(self, a, b):
        pieces = a.minus(b)
        total = sum(piece.duration for piece in pieces)
        overlap = a.intersect(b)
        overlap_len = overlap.duration if overlap else 0
        assert total == a.duration - overlap_len
        for piece in pieces:
            assert a.contains(piece)
            assert not piece.overlaps(b)
