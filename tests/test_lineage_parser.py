"""Round-trip and syntax tests for the lineage parser."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import QueryParseError, parse_lineage
from repro.lineage import FALSE, TRUE, Var, land, lnot, lor


class TestNotations:
    def test_unicode(self):
        assert parse_lineage("c1 ∧ ¬(a1 ∨ b1)") == land(
            Var("c1"), lnot(lor(Var("a1"), Var("b1")))
        )

    def test_ascii_symbols(self):
        assert parse_lineage("c1 & !(a1 | b1)") == parse_lineage("c1 ∧ ¬(a1 ∨ b1)")

    def test_keywords(self):
        assert parse_lineage("c1 and not (a1 or b1)") == parse_lineage(
            "c1 ∧ ¬(a1 ∨ b1)"
        )

    def test_constants(self):
        assert parse_lineage("true") == TRUE
        assert parse_lineage("⊥") == FALSE


class TestPrecedence:
    def test_and_binds_tighter(self):
        assert parse_lineage("a | b & c") == lor(Var("a"), land(Var("b"), Var("c")))

    def test_not_binds_tightest(self):
        assert parse_lineage("!a & b") == land(lnot(Var("a")), Var("b"))

    def test_parentheses(self):
        assert parse_lineage("(a | b) & c") == land(
            lor(Var("a"), Var("b")), Var("c")
        )

    def test_chained_same_operator_flattens(self):
        assert parse_lineage("a & b & c") == land(Var("a"), Var("b"), Var("c"))


class TestErrors:
    @pytest.mark.parametrize(
        "text", ["", "a &", "& a", "(a", "a)", "a ~ b", "a b"]
    )
    def test_rejected(self, text):
        with pytest.raises(QueryParseError):
            parse_lineage(text)


@st.composite
def formulas(draw, depth: int = 3):
    names = st.sampled_from(["a1", "b2", "c3", "x"])
    if depth == 0:
        return Var(draw(names))
    kind = draw(st.integers(0, 3))
    if kind == 0:
        return Var(draw(names))
    if kind == 1:
        return lnot(draw(formulas(depth=depth - 1)))
    left = draw(formulas(depth=depth - 1))
    right = draw(formulas(depth=depth - 1))
    return land(left, right) if kind == 2 else lor(left, right)


class TestRoundTrip:
    @given(formulas())
    def test_parse_of_str_is_identity(self, formula):
        assert parse_lineage(str(formula)) == formula
