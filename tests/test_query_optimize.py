"""Tests for the query optimizer (flattening + difference fusion)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.db import TPDatabase
from repro.query import (
    MultiOpNode,
    MultiSetOpPlan,
    RelationRef,
    SetOpNode,
    optimize_query,
    parse_query,
    plan_query,
)

from .strategies import tp_relation


class TestFlattening:
    def test_union_chain_flattens(self):
        node = optimize_query(parse_query("a | b | c | d"))
        assert isinstance(node, MultiOpNode)
        assert node.op == "union"
        assert [str(c) for c in node.children] == ["a", "b", "c", "d"]

    def test_intersect_chain_flattens(self):
        node = optimize_query(parse_query("a & b & c"))
        assert isinstance(node, MultiOpNode)
        assert node.op == "intersect"

    def test_mixed_ops_do_not_merge(self):
        node = optimize_query(parse_query("(a | b) & (c | d)"))
        assert isinstance(node, SetOpNode)
        assert node.op == "intersect"
        assert isinstance(node.left, RelationRef) is False

    def test_binary_stays_binary(self):
        node = optimize_query(parse_query("a | b"))
        assert isinstance(node, SetOpNode)

    def test_nested_parenthesized_chain(self):
        node = optimize_query(parse_query("(a | (b | c)) | d"))
        assert isinstance(node, MultiOpNode)
        assert len(node.children) == 4

    def test_difference_not_flattened(self):
        node = optimize_query(parse_query("a - b - c"))
        assert isinstance(node, SetOpNode)
        assert node.op == "except"

    def test_str_rendering(self):
        assert str(optimize_query(parse_query("a | b | c"))) == "(a ∪ b ∪ c)"


class TestDifferenceFusion:
    def test_fusion(self):
        node = optimize_query(parse_query("a - b - c"), aggressive=True)
        assert str(node) == "(a − (b ∪ c))"

    def test_long_chain_fuses_to_multiway_union(self):
        node = optimize_query(parse_query("a - b - c - d"), aggressive=True)
        assert str(node) == "(a − (b ∪ c ∪ d))"

    def test_fusion_off_by_default(self):
        node = optimize_query(parse_query("a - b - c"))
        assert "∪" not in str(node)


class TestPlanningAndExecution:
    @pytest.fixture
    def db(self):
        db = TPDatabase()
        db.create_relation("r1", ("x",), [("f", 0, 6, 0.5), ("g", 1, 4, 0.3)])
        db.create_relation("r2", ("x",), [("f", 2, 8, 0.4)])
        db.create_relation("r3", ("x",), [("f", 5, 9, 0.6), ("g", 2, 3, 0.9)])
        db.create_relation("r4", ("x",), [("f", 0, 2, 0.2)])
        return db

    def test_multiway_plan_node(self):
        plan = plan_query(optimize_query(parse_query("a | b | c")))
        assert isinstance(plan, MultiSetOpPlan)
        assert "MULTIWAY×3" in plan.describe()

    def test_optimized_union_matches_unoptimized(self, db):
        plain = db.query("r1 | r2 | r3 | r4")
        optimized = db.query("r1 | r2 | r3 | r4", optimize=True)
        assert optimized.equivalent_to(plain)  # lineage-identical

    def test_optimized_intersection_matches(self, db):
        plain = db.query("r1 & r2 & r3")
        optimized = db.query("r1 & r2 & r3", optimize=True)
        assert optimized.equivalent_to(plain)

    def test_aggressive_difference_same_distribution(self, db):
        plain = db.query("r1 - r2 - r3")
        fused = db.query("r1 - r2 - r3", aggressive=True)
        left = {(t.fact, p): t.p for t in plain for p in range(t.start, t.end)}
        right = {(t.fact, p): t.p for t in fused for p in range(t.start, t.end)}
        assert left.keys() == right.keys()
        for key, value in left.items():
            assert value == pytest.approx(right[key])

    def test_explain_shows_multiway(self, db):
        text = db.explain("r1 | r2 | r3", optimize=True)
        assert "MULTIWAY×3" in text
        assert "PTIME" in text  # analysis still reported on the original

    def test_mixed_query_end_to_end(self, db):
        plain = db.query("(r1 | r2 | r4) - r3")
        optimized = db.query("(r1 | r2 | r4) - r3", optimize=True)
        assert optimized.equivalent_to(plain)

    @settings(max_examples=25, deadline=None)
    @given(
        r1=tp_relation("y1", max_facts=2, max_intervals=3),
        r2=tp_relation("y2", max_facts=2, max_intervals=3),
        r3=tp_relation("y3", max_facts=2, max_intervals=3),
    )
    def test_property_optimized_equals_plain(self, r1, r2, r3):
        db = TPDatabase()
        db.register(r1.rename("r1"))
        db.register(r2.rename("r2"))
        db.register(r3.rename("r3"))
        for query in ("r1 | r2 | r3", "r1 & r2 & r3", "(r1 | r2) & r3"):
            plain = db.query(query)
            optimized = db.query(query, optimize=True)
            assert optimized.equivalent_to(plain), query


# ----------------------------------------------------------------------
# PR 5: cost-based optimizer — rules, statistics, cost model, levels
# ----------------------------------------------------------------------
def _stats(catalog):
    from repro.query import relation_stats

    return {name: relation_stats(rel) for name, rel in catalog.items()}


@pytest.fixture
def join_catalog():
    from repro import TPRelation

    return {
        "r": TPRelation.from_rows(
            "r", ("k", "a"),
            [("k1", "a1", 0, 6, 0.5), ("k2", "a1", 1, 4, 0.3), ("k1", "a2", 2, 5, 0.7)],
        ),
        "s": TPRelation.from_rows(
            "s", ("k", "b"), [("k1", "b1", 2, 8, 0.4), ("k2", "b2", 0, 3, 0.9)]
        ),
        "t": TPRelation.from_rows(
            "t", ("b", "c"), [("b1", "c1", 1, 9, 0.6), ("b2", "c2", 2, 3, 0.5)]
        ),
    }


class TestJoinPushdown:
    """The per-kind soundness table of σ-through-join (DESIGN.md §11)."""

    def push(self, text, catalog):
        from repro.query import enumerate_plans

        plans = enumerate_plans(parse_query(text), stats=_stats(catalog))
        return str(plans[-1])  # the most-rewritten candidate

    def test_join_attribute_pushes_into_both_sides(self, join_catalog):
        pushed = self.push("(r JOIN s)[k='k1']", join_catalog)
        assert pushed == "(σ[k='k1'](r) ⋈ σ[k='k1'](s))"

    def test_right_rest_attribute_pushes_right_only(self, join_catalog):
        assert self.push("(r JOIN s)[b='b1']", join_catalog) == "(r ⋈ σ[b='b1'](s))"

    def test_left_outer_pushes_left_attribute_only(self, join_catalog):
        pushed = self.push("(r LEFT OUTER JOIN s)[a='a1']", join_catalog)
        assert pushed == "(σ[a='a1'](r) ⟕ s)"

    def test_left_outer_never_pushes_padded_right_rest(self, join_catalog):
        from repro.query import enumerate_plans

        plans = enumerate_plans(
            parse_query("(r LEFT OUTER JOIN s)[b='b1']"), stats=_stats(join_catalog)
        )
        assert all("σ[b='b1'](s)" not in str(p) for p in plans)

    def test_right_outer_never_pushes_padded_left_rest(self, join_catalog):
        from repro.query import enumerate_plans

        plans = enumerate_plans(
            parse_query("(r RIGHT OUTER JOIN s)[a='a1']"), stats=_stats(join_catalog)
        )
        assert all("σ[a='a1'](r)" not in str(p) for p in plans)

    def test_full_outer_pushes_join_attribute_only(self, join_catalog):
        pushed = self.push("(r ⟗ s)[k='k2']", join_catalog)
        assert pushed == "(σ[k='k2'](r) ⟗ σ[k='k2'](s))"
        from repro.query import enumerate_plans

        plans = enumerate_plans(
            parse_query("(r ⟗ s)[b='b1']"), stats=_stats(join_catalog)
        )
        assert all("σ" not in str(p) or "σ[b='b1']((r" in str(p) for p in plans)

    def test_anti_join_pushes_both_on_join_attribute(self, join_catalog):
        assert (
            self.push("(r ANTI JOIN s)[k='k2']", join_catalog)
            == "(σ[k='k2'](r) ▷ σ[k='k2'](s))"
        )

    def test_setop_guard_blocks_positional_mismatch(self):
        """σ[b=...] over r(k,a) ∪ s(k,b): 'b' resolves only in s — the
        guarded rule must keep σ above instead of pushing one-sided."""
        from repro import TPRelation
        from repro.query import enumerate_plans

        catalog = {
            "r": TPRelation.from_rows("r", ("k", "a"), [("k1", "a1", 0, 4, 0.5)]),
            "s": TPRelation.from_rows("s", ("k", "b"), [("k1", "b1", 1, 3, 0.4)]),
        }
        plans = enumerate_plans(
            parse_query("(r | s)[a='a1']"), stats=_stats(catalog)
        )
        assert all("(σ" not in str(p) for p in plans)


class TestReassociation:
    def test_three_chain_yields_both_associations(self, join_catalog):
        from repro.query import enumerate_plans

        plans = enumerate_plans(
            parse_query("r JOIN s JOIN t"), stats=_stats(join_catalog)
        )
        shapes = {str(p) for p in plans}
        assert "((r ⋈ s) ⋈ t)" in shapes
        assert "(r ⋈ (s ⋈ t))" in shapes

    def test_explicit_on_chains_not_reassociated(self, join_catalog):
        from repro.query import enumerate_plans

        plans = enumerate_plans(
            parse_query("r JOIN s ON k JOIN t ON b"), stats=_stats(join_catalog)
        )
        assert len(plans) == 1  # only natural chains reassociate

    def test_outer_joins_block_the_chain(self, join_catalog):
        from repro.query import enumerate_plans

        plans = enumerate_plans(
            parse_query("r LEFT OUTER JOIN s JOIN t"), stats=_stats(join_catalog)
        )
        assert {str(p) for p in plans} == {str(plans[0])} or len(plans) == 1


class TestCostModel:
    def test_selectivity_uses_distinct_counts(self, join_catalog):
        from repro.query import estimate

        stats = _stats(join_catalog)
        scan = estimate(parse_query("r"), stats, workers=1)
        assert scan.rows == 3.0
        selected = estimate(parse_query("r[k='k1']"), stats, workers=1)
        assert selected.rows == pytest.approx(1.5)  # 2 distinct keys

    def test_chooser_prefers_pushdown(self, join_catalog):
        from repro.query import choose_plan

        stats = _stats(join_catalog)
        choice = choose_plan(parse_query("(r JOIN s)[k='k1']"), stats)
        assert "σ[k='k1'](r)" in str(choice.chosen)
        costs = [entry[1].cost for entry in choice.candidates]
        assert choice.estimate.cost == min(costs)

    def test_worker_awareness_discounts_large_sweeps(self):
        from repro.datasets import generate_pair
        from repro.query import estimate, relation_stats

        r, s = generate_pair(6000, n_facts=8, seed=1)
        stats = {"r": relation_stats(r), "s": relation_stats(s)}
        serial = estimate(parse_query("r | s"), stats, workers=1)
        pooled = estimate(parse_query("r | s"), stats, workers=4)
        assert pooled.cost < serial.cost
        assert pooled.rows == serial.rows  # cardinality is worker-blind

    def test_order_multiway_children_sorts_by_cardinality(self, join_catalog):
        from repro import TPRelation
        from repro.query import optimize_query, order_multiway_children

        catalog = dict(join_catalog)
        catalog["u"] = TPRelation.from_rows("u", ("k", "a"), [("k1", "a1", 0, 2, 0.5)])
        stats = _stats(catalog)
        flat = optimize_query(parse_query("r | r | u"))
        ordered = order_multiway_children(flat, stats)
        assert str(ordered) == "(u ∪ r ∪ r)"


class TestResolveLevel:
    def test_mappings(self):
        from repro.query import resolve_level

        assert resolve_level(False) == "off"
        assert resolve_level(None) == "off"
        assert resolve_level(True) == "safe"
        assert resolve_level("safe") == "safe"
        assert resolve_level("off", aggressive=True) == "aggressive"
        assert resolve_level(True, aggressive=True) == "aggressive"

    def test_rejects_unknown_levels(self):
        from repro.query import resolve_level

        with pytest.raises(ValueError, match="off, safe, aggressive"):
            resolve_level("fast")
        with pytest.raises(ValueError, match="off, safe, aggressive"):
            resolve_level(2)


class TestViewMatching:
    def test_rewritten_subtree_reads_the_view(self):
        """Canonical matching: a pushdown-variant of the view definition
        is substituted by a scan of the maintained result."""
        from repro.db import TPDatabase

        db = TPDatabase()
        db.create_relation(
            "a", ("g",), [("x", 0, 6, 0.5), ("y", 1, 4, 0.3)]
        )
        db.create_relation("b", ("g",), [("x", 2, 8, 0.4)])
        db.create_view("v", "(a | b)[g='x']")
        exact = db.explain("(a | b)[g='x']", optimize="safe")
        assert "Scan[v]" in exact
        variant = db.explain("a[g='x'] | b[g='x']", optimize="safe")
        assert "Scan[v]" in variant
        unoptimized = db.explain("a[g='x'] | b[g='x']")
        assert "Scan[v]" not in unoptimized  # exact matching only
        result = db.query("a[g='x'] | b[g='x']", optimize="safe")
        direct = db.query("(a | b)[g='x']", use_views=False)
        assert result.equivalent_to(direct.rename(result.name))


class TestDatabaseStats:
    def test_stats_of_prefers_incremental_store_path(self):
        from repro.db import TPDatabase

        db = TPDatabase()
        db.create_relation("a", ("g",), [("x", 0, 6, 0.5), ("y", 1, 4, 0.3)])
        lazy = db.stats_of("a")
        assert (lazy.n_tuples, lazy.n_facts) == (2, 2)
        db.insert("a", [("z", 7, 9, 0.8)])  # converts to a store
        incremental = db.stats_of("a")
        assert incremental.n_tuples == 3
        assert incremental.distinct["g"] == 3
        assert incremental.span == (0, 9)
        db.delete("a", [("x", 0, 6)])
        assert db.stats_of("a").n_tuples == 2
        assert db.stats_of("a").span == (1, 9)


class TestExplainPrefixDisambiguation:
    """Keywords are not reserved as relation names (PR 2's convention):
    EXPLAIN yields to a relation named 'explain' whenever the whole text
    is the only valid reading."""

    @pytest.fixture
    def db(self):
        from repro.db import TPDatabase

        db = TPDatabase()
        db.create_relation("explain", ("g",), [("x", 0, 4, 0.5)])
        db.create_relation("a", ("g",), [("x", 2, 6, 0.7)])
        return db

    def test_relation_named_explain_still_queryable(self, db):
        result = db.query("explain | a")
        assert not isinstance(result, str)
        assert len(result) == 3

    def test_explain_prefix_still_wins_when_remainder_parses(self, db):
        report = db.query("EXPLAIN explain | a")
        assert isinstance(report, str)
        assert "optimizer:" in report

    def test_garbage_after_explain_reports_the_target(self, db):
        from repro import QueryParseError

        with pytest.raises(QueryParseError, match="EXPLAIN target"):
            db.query("EXPLAIN ] nonsense [")


class TestHistogramBuckets:
    def test_narrow_spans_partition_evenly(self):
        from repro.query.stats import build_histogram

        hist = build_histogram([(0, 10)], (0, 10))
        assert len(hist) == 10  # one bucket per point, no dead tail
        assert all(count == 1 for count in hist)
        hist = build_histogram([(9, 10)], (0, 10))
        assert hist == (0,) * 9 + (1,)

    def test_wide_spans_cap_at_n_buckets(self):
        from repro.query.stats import N_BUCKETS, build_histogram

        hist = build_histogram([(0, 1600)], (0, 1600))
        assert len(hist) == N_BUCKETS
        assert all(count == 1 for count in hist)

    def test_overlap_estimates_see_narrow_span_coverage(self):
        """A late tuple in a narrow span must overlap a late peer —
        the clamped-width regression collapsed this fraction to 0."""
        from repro import TPRelation
        from repro.query import estimate, parse_query, relation_stats

        r = TPRelation.from_rows("r", ("g",), [("x", 9, 10, 0.5)])
        s = TPRelation.from_rows(
            "s", ("g",), [("x", 0, 1, 0.5), ("x", 7, 10, 0.6)]
        )
        stats = {"r": relation_stats(r), "s": relation_stats(s)}
        est = estimate(parse_query("r & s"), stats, workers=1)
        assert est.rows > 0.0
