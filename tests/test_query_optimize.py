"""Tests for the query optimizer (flattening + difference fusion)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.db import TPDatabase
from repro.query import (
    MultiOpNode,
    MultiSetOpPlan,
    RelationRef,
    SetOpNode,
    optimize_query,
    parse_query,
    plan_query,
)

from .strategies import tp_relation


class TestFlattening:
    def test_union_chain_flattens(self):
        node = optimize_query(parse_query("a | b | c | d"))
        assert isinstance(node, MultiOpNode)
        assert node.op == "union"
        assert [str(c) for c in node.children] == ["a", "b", "c", "d"]

    def test_intersect_chain_flattens(self):
        node = optimize_query(parse_query("a & b & c"))
        assert isinstance(node, MultiOpNode)
        assert node.op == "intersect"

    def test_mixed_ops_do_not_merge(self):
        node = optimize_query(parse_query("(a | b) & (c | d)"))
        assert isinstance(node, SetOpNode)
        assert node.op == "intersect"
        assert isinstance(node.left, RelationRef) is False

    def test_binary_stays_binary(self):
        node = optimize_query(parse_query("a | b"))
        assert isinstance(node, SetOpNode)

    def test_nested_parenthesized_chain(self):
        node = optimize_query(parse_query("(a | (b | c)) | d"))
        assert isinstance(node, MultiOpNode)
        assert len(node.children) == 4

    def test_difference_not_flattened(self):
        node = optimize_query(parse_query("a - b - c"))
        assert isinstance(node, SetOpNode)
        assert node.op == "except"

    def test_str_rendering(self):
        assert str(optimize_query(parse_query("a | b | c"))) == "(a ∪ b ∪ c)"


class TestDifferenceFusion:
    def test_fusion(self):
        node = optimize_query(parse_query("a - b - c"), aggressive=True)
        assert str(node) == "(a − (b ∪ c))"

    def test_long_chain_fuses_to_multiway_union(self):
        node = optimize_query(parse_query("a - b - c - d"), aggressive=True)
        assert str(node) == "(a − (b ∪ c ∪ d))"

    def test_fusion_off_by_default(self):
        node = optimize_query(parse_query("a - b - c"))
        assert "∪" not in str(node)


class TestPlanningAndExecution:
    @pytest.fixture
    def db(self):
        db = TPDatabase()
        db.create_relation("r1", ("x",), [("f", 0, 6, 0.5), ("g", 1, 4, 0.3)])
        db.create_relation("r2", ("x",), [("f", 2, 8, 0.4)])
        db.create_relation("r3", ("x",), [("f", 5, 9, 0.6), ("g", 2, 3, 0.9)])
        db.create_relation("r4", ("x",), [("f", 0, 2, 0.2)])
        return db

    def test_multiway_plan_node(self):
        plan = plan_query(optimize_query(parse_query("a | b | c")))
        assert isinstance(plan, MultiSetOpPlan)
        assert "MULTIWAY×3" in plan.describe()

    def test_optimized_union_matches_unoptimized(self, db):
        plain = db.query("r1 | r2 | r3 | r4")
        optimized = db.query("r1 | r2 | r3 | r4", optimize=True)
        assert optimized.equivalent_to(plain)  # lineage-identical

    def test_optimized_intersection_matches(self, db):
        plain = db.query("r1 & r2 & r3")
        optimized = db.query("r1 & r2 & r3", optimize=True)
        assert optimized.equivalent_to(plain)

    def test_aggressive_difference_same_distribution(self, db):
        plain = db.query("r1 - r2 - r3")
        fused = db.query("r1 - r2 - r3", aggressive=True)
        left = {(t.fact, p): t.p for t in plain for p in range(t.start, t.end)}
        right = {(t.fact, p): t.p for t in fused for p in range(t.start, t.end)}
        assert left.keys() == right.keys()
        for key, value in left.items():
            assert value == pytest.approx(right[key])

    def test_explain_shows_multiway(self, db):
        text = db.explain("r1 | r2 | r3", optimize=True)
        assert "MULTIWAY×3" in text
        assert "PTIME" in text  # analysis still reported on the original

    def test_mixed_query_end_to_end(self, db):
        plain = db.query("(r1 | r2 | r4) - r3")
        optimized = db.query("(r1 | r2 | r4) - r3", optimize=True)
        assert optimized.equivalent_to(plain)

    @settings(max_examples=25, deadline=None)
    @given(
        r1=tp_relation("y1", max_facts=2, max_intervals=3),
        r2=tp_relation("y2", max_facts=2, max_intervals=3),
        r3=tp_relation("y3", max_facts=2, max_intervals=3),
    )
    def test_property_optimized_equals_plain(self, r1, r2, r3):
        db = TPDatabase()
        db.register(r1.rename("r1"))
        db.register(r2.rename("r2"))
        db.register(r3.rename("r3"))
        for query in ("r1 | r2 | r3", "r1 & r2 & r3", "(r1 | r2) & r3"):
            plain = db.query(query)
            optimized = db.query(query, optimize=True)
            assert optimized.equivalent_to(plain), query
