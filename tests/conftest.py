"""Shared fixtures: the paper's running example (Fig. 1) and helpers."""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, settings

from repro import TPRelation

# One moderate profile for the whole suite: the snapshot-oracle property
# tests are comparatively expensive per example, and the strategies are
# small enough that 40 examples exercise the interesting interleavings.
settings.register_profile(
    "repro",
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)
# The CI profile is *derandomized*: every run draws the same examples,
# so a red CI is reproducible locally byte for byte (set
# HYPOTHESIS_PROFILE=repro-ci) and a green one cannot flake.  Failures
# additionally print an @reproduce_failure blob (the "seed" to replay
# one exact example without the profile).
settings.register_profile(
    "repro-ci",
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
    derandomize=True,
    print_blob=True,
)
_PROFILE = os.environ.get("HYPOTHESIS_PROFILE", "repro")
settings.load_profile(_PROFILE)


def pytest_report_header(config) -> str:
    if _PROFILE == "repro-ci":
        detail = (
            "derandomized; reproduce locally with HYPOTHESIS_PROFILE=repro-ci, "
            "or replay one failure via its printed @reproduce_failure blob"
        )
    else:
        detail = "randomized; CI pins HYPOTHESIS_PROFILE=repro-ci"
    return f"hypothesis profile: {_PROFILE} ({detail})"


@pytest.fixture
def rel_a() -> TPRelation:
    """Relation a (productsBought) of Fig. 1a."""
    return TPRelation.from_rows(
        "a",
        ("product",),
        [("milk", 2, 10, 0.3), ("chips", 4, 7, 0.8), ("dates", 1, 3, 0.6)],
    )


@pytest.fixture
def rel_b() -> TPRelation:
    """Relation b (productsOrdered) of Fig. 1a."""
    return TPRelation.from_rows(
        "b",
        ("product",),
        [("milk", 5, 9, 0.6), ("chips", 3, 6, 0.9)],
    )


@pytest.fixture
def rel_c() -> TPRelation:
    """Relation c (productsInStock) of Fig. 1a."""
    return TPRelation.from_rows(
        "c",
        ("product",),
        [
            ("milk", 1, 4, 0.6),
            ("milk", 6, 8, 0.7),
            ("chips", 4, 5, 0.7),
            ("chips", 7, 9, 0.8),
        ],
    )


def rows_of(relation: TPRelation) -> set[tuple]:
    """Hashable (fact, lineage text, start, end, rounded p) summary."""
    return {
        (t.fact, str(t.lineage), t.start, t.end, None if t.p is None else round(t.p, 6))
        for t in relation
    }
