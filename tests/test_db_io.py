"""Round-trip tests for relation serialization (JSON and CSV)."""

from __future__ import annotations

import pytest

from repro import tp_except, tp_union
from repro.db import load_csv, load_json, save_csv, save_json


class TestJson:
    def test_round_trip_base(self, rel_a, tmp_path):
        path = tmp_path / "a.json"
        save_json(rel_a, path)
        loaded = load_json(path)
        assert loaded.equivalent_to(rel_a)
        assert loaded.name == rel_a.name
        assert loaded.events == rel_a.events

    def test_round_trip_derived(self, rel_a, rel_b, rel_c, tmp_path):
        result = tp_except(rel_c, tp_union(rel_a, rel_b))
        path = tmp_path / "q.json"
        save_json(result, path)
        loaded = load_json(path)
        assert loaded.equivalent_to(result)
        assert loaded.events == result.events

    def test_schema_preserved(self, rel_a, tmp_path):
        path = tmp_path / "a.json"
        save_json(rel_a, path)
        assert load_json(path).schema == rel_a.schema


class TestCsv:
    def test_round_trip_base_no_sidecar(self, rel_a, tmp_path):
        path = tmp_path / "a.csv"
        save_csv(rel_a, path)
        assert not (tmp_path / "a.csv.events.csv").exists()
        loaded = load_csv(path, name="a")
        assert loaded.equivalent_to(rel_a)
        assert loaded.events == rel_a.events

    def test_round_trip_derived_with_sidecar(self, rel_a, rel_c, tmp_path):
        result = tp_except(rel_a, rel_c)
        path = tmp_path / "diff.csv"
        save_csv(result, path)
        assert (tmp_path / "diff.csv.events.csv").exists()
        loaded = load_csv(path)
        assert loaded.equivalent_to(result)

    def test_missing_sidecar_rejected(self, rel_a, rel_c, tmp_path):
        result = tp_except(rel_a, rel_c)
        path = tmp_path / "diff.csv"
        save_csv(result, path)
        (tmp_path / "diff.csv.events.csv").unlink()
        with pytest.raises(ValueError, match="sidecar"):
            load_csv(path)

    def test_stale_sidecar_removed_on_resave(self, rel_a, rel_c, tmp_path):
        """Re-saving all-atomic content must drop a stale events sidecar.

        Without the cleanup, the derived save's sidecar survives the
        re-save and silently overrides the base tuples' probabilities on
        the next load."""
        path = tmp_path / "rel.csv"
        save_csv(tp_except(rel_a, rel_c), path)  # derived: writes sidecar
        sidecar = tmp_path / "rel.csv.events.csv"
        assert sidecar.exists()
        save_csv(rel_a, path)  # base: all lineages atomic
        assert not sidecar.exists()
        loaded = load_csv(path, name="a")
        assert loaded.equivalent_to(rel_a)
        assert loaded.events == rel_a.events

    def test_name_defaults_to_stem(self, rel_a, tmp_path):
        path = tmp_path / "warehouse.csv"
        save_csv(rel_a, path)
        assert load_csv(path).name == "warehouse"

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bogus.csv"
        path.write_text("x,y,z\n1,2,3\n")
        with pytest.raises(ValueError, match="TP relation CSV"):
            load_csv(path)

    def test_numeric_fact_values_coerced(self, tmp_path):
        from repro import TPRelation

        r = TPRelation.from_rows(
            "sensors", ("sensor_id", "reading"), [(7, 21.5, 1, 3, 0.9)]
        )
        path = tmp_path / "sensors.csv"
        save_csv(r, path)
        loaded = load_csv(path)
        (t,) = list(loaded)
        assert t.fact == (7, 21.5)


class TestAtomicSaves:
    """Crash fault injection over the atomic save protocol (§12).

    A simulated crash at every write/fsync/replace boundary must leave
    the *previous* file contents fully readable — never a torn file —
    and only the crash after ``os.replace`` exposes the new contents.
    """

    BOUNDARIES = ["io.save.begin", "io.save.written", "io.save.synced"]

    @pytest.mark.parametrize("boundary", BOUNDARIES)
    @pytest.mark.parametrize("fmt", ["json", "csv"])
    def test_crash_before_replace_keeps_old_file(
        self, rel_a, rel_b, tmp_path, boundary, fmt
    ):
        from repro.store import SimulatedCrash, fault_hook

        save = save_json if fmt == "json" else save_csv
        load = load_json if fmt == "json" else load_csv
        path = tmp_path / f"rel.{fmt}"
        save(rel_a, path)

        def hook(name: str) -> None:
            if name == boundary:
                raise SimulatedCrash(boundary)

        with fault_hook(hook):
            with pytest.raises(SimulatedCrash):
                save(rel_b, path)
        assert load(path).equivalent_to(rel_a)

    @pytest.mark.parametrize("fmt", ["json", "csv"])
    def test_crash_after_replace_exposes_new_file(
        self, rel_a, rel_b, tmp_path, fmt
    ):
        from repro.store import SimulatedCrash, fault_hook

        save = save_json if fmt == "json" else save_csv
        load = load_json if fmt == "json" else load_csv
        path = tmp_path / f"rel.{fmt}"
        save(rel_a, path)

        def hook(name: str) -> None:
            if name == "io.save.replaced":
                raise SimulatedCrash(name)

        with fault_hook(hook):
            with pytest.raises(SimulatedCrash):
                save(rel_b, path)
        assert load(path).equivalent_to(rel_b)

    def test_dead_tmp_file_is_overwritten_by_next_save(self, rel_a, tmp_path):
        path = tmp_path / "rel.json"
        tmp = tmp_path / "rel.json.tmp"
        tmp.write_text("garbage from a crashed save")
        save_json(rel_a, path)
        assert not tmp.exists()
        assert load_json(path).equivalent_to(rel_a)
