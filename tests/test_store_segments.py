"""Unit tests for the mutable segment store (repro.store.segment/delta)."""

from __future__ import annotations

import pytest

from repro import DuplicateFactError
from repro.store import Delta, SegmentStore, load_delta, save_delta


@pytest.fixture
def store(rel_a) -> SegmentStore:
    return SegmentStore.from_relation(rel_a)


class TestBasics:
    def test_from_relation_round_trip(self, rel_a, store):
        assert len(store) == len(rel_a)
        assert store.snapshot().equivalent_to(rel_a)
        assert store.snapshot().name == rel_a.name

    def test_snapshot_is_born_sorted(self, store):
        snap = store.snapshot()
        assert snap.is_sorted_by_fact_ts

    def test_snapshot_cached_per_epoch(self, store):
        assert store.snapshot() is store.snapshot()
        store.insert([("beer", 1, 3, 0.5)])
        first = store.snapshot()
        assert first is not None and first is store.snapshot()

    def test_iter_sorted_matches_snapshot(self, store):
        store.insert([("beer", 1, 3, 0.5), ("milk", 12, 14, 0.2)])
        assert list(store.iter_sorted()) == list(store.snapshot().sorted_tuples())

    def test_tuples_of(self, store):
        (t,) = store.tuples_of(("chips",))
        assert (t.start, t.end) == (4, 7)
        assert store.tuples_of(("nope",)) == []


class TestTransactions:
    def test_insert_assigns_fresh_ids_and_events(self, store):
        before = dict(store.events)
        cs = store.insert([("beer", 1, 3, 0.5)])
        (t,) = cs.inserted
        name = str(t.lineage)
        assert name not in before and store.events[name] == 0.5

    def test_empty_transaction_is_noop(self, store):
        epoch = store.epoch
        cs = store.apply()
        assert not cs and store.epoch == epoch
        assert store.changes_since(epoch) == []

    def test_epoch_and_change_log(self, store):
        start = store.epoch
        store.insert([("beer", 1, 3, 0.5)])
        store.delete([("chips", 4, 7)])
        changes = store.changes_since(start)
        assert [cs.epoch for cs in changes] == [start + 1, start + 2]
        assert len(changes[0].inserted) == 1 and len(changes[1].deleted) == 1

    def test_delete_unknown_tuple_rejected(self, store):
        with pytest.raises(KeyError):
            store.delete([("chips", 4, 8)])  # wrong interval

    def test_overlap_rejected_and_rolled_back(self, store):
        epoch = store.epoch
        snapshot = store.snapshot()
        with pytest.raises(DuplicateFactError):
            # Second insert of the batch overlaps the first.
            store.insert([("beer", 1, 5, 0.5), ("beer", 3, 8, 0.4)])
        assert store.epoch == epoch
        assert store.snapshot().equivalent_to(snapshot)

    def test_failed_batch_rolls_back_deletes_too(self, store):
        snapshot = store.snapshot()
        with pytest.raises(DuplicateFactError):
            store.apply(
                deletes=[("chips", 4, 7)],
                inserts=[("milk", 3, 5, 0.4)],  # overlaps stored milk [2,10)
            )
        assert store.snapshot().equivalent_to(snapshot)

    def test_delete_then_insert_same_batch(self, store):
        # The "update" pattern: replacing a tuple in place is one batch.
        cs = store.apply(
            deletes=[("milk", 2, 10)], inserts=[("milk", 2, 10, 0.9)]
        )
        assert len(cs.inserted) == len(cs.deleted) == 1
        (t,) = store.tuples_of(("milk",))
        assert t.p == 0.9

    def test_boundary_touching_insert_accepted(self, store):
        # Half-open intervals: [10, 12) touches milk's [2, 10) but does
        # not overlap it.
        store.insert([("milk", 10, 12, 0.4)])
        starts = [t.start for t in store.tuples_of(("milk",))]
        assert starts == [2, 10]

    def test_delete_where(self, store):
        cs = store.delete_where(lambda t: t.fact == ("milk",))
        assert len(cs.deleted) == 1
        assert ("milk",) not in store

    def test_regions_merge_per_fact(self, store):
        cs = store.apply(
            deletes=[("milk", 2, 10)],
            inserts=[("milk", 2, 8, 0.4), ("dates", 10, 12, 0.3)],
        )
        regions = dict(((f, (lo, hi)) for f, lo, hi in cs.regions()))
        assert regions[("milk",)] == (2, 10)
        assert regions[("dates",)] == (10, 12)


class TestSegmentation:
    def test_segments_split_and_stay_sorted(self):
        store = SegmentStore("s", ("k",), segment_capacity=4)
        rows = [("x", i * 2, i * 2 + 1, 0.5) for i in range(40)]
        store.insert(rows)
        stats = store.segment_stats()
        assert stats["segments"] > 1
        starts = [t.start for t in store.tuples_of(("x",))]
        assert starts == sorted(starts)

    def test_interval_index_locates_across_segments(self):
        store = SegmentStore("s", ("k",), segment_capacity=4)
        store.insert([("x", i * 10, i * 10 + 9, 0.5) for i in range(20)])
        # Delete from the middle, insert into the freed slot.
        store.delete([("x", 100, 109)])
        store.insert([("x", 101, 104, 0.3)])
        with pytest.raises(DuplicateFactError):
            store.insert([("x", 103, 106, 0.3)])
        starts = [t.start for t in store.tuples_of(("x",))]
        assert starts == sorted(starts) and 101 in starts

    def test_empty_fact_groups_pruned(self):
        store = SegmentStore("s", ("k",))
        store.insert([("x", 0, 5, 0.5), ("y", 0, 5, 0.5)])
        store.delete_where(lambda t: t.fact == ("y",))
        assert store.facts() == [("x",)]

    def test_prune_log(self):
        store = SegmentStore("s", ("k",))
        store.insert([("x", 0, 5, 0.5)])
        store.insert([("x", 6, 8, 0.5)])
        store.prune_log(1)
        assert [cs.epoch for cs in store.changes_since(1)] == [2]
        with pytest.raises(ValueError, match="pruned"):
            store.changes_since(0)


class TestDeltaFiles:
    def test_round_trip(self, tmp_path):
        delta = Delta(
            inserts=(("milk", 2, 10, 0.3), ("chips", 1, 4, 0.8)),
            deletes=(("dates", 1, 3),),
        )
        path = tmp_path / "delta.csv"
        save_delta(delta, path, ("product",))
        loaded = load_delta(path, ("product",))
        assert loaded == delta
        assert len(loaded) == 3 and bool(loaded)

    def test_apply_to_store(self, store, tmp_path):
        delta = Delta(inserts=(("beer", 1, 3, 0.5),), deletes=(("chips", 4, 7),))
        path = tmp_path / "delta.csv"
        save_delta(delta, path, ("product",))
        cs = store.apply(
            inserts=load_delta(path, ("product",)).inserts,
            deletes=load_delta(path, ("product",)).deletes,
        )
        assert len(cs.inserted) == 1 and len(cs.deleted) == 1

    def test_header_mismatch_rejected(self, tmp_path):
        path = tmp_path / "delta.csv"
        path.write_text("op,item,ts,te,p\n+,milk,1,2,0.5\n")
        with pytest.raises(ValueError, match="delta file"):
            load_delta(path, ("product",))

    def test_bad_marker_rejected(self, tmp_path):
        path = tmp_path / "delta.csv"
        path.write_text("op,product,ts,te,p\n?,milk,1,2,0.5\n")
        with pytest.raises(ValueError, match="op marker"):
            load_delta(path, ("product",))

    def test_insert_needs_probability(self, tmp_path):
        path = tmp_path / "delta.csv"
        path.write_text("op,product,ts,te,p\n+,milk,1,2,\n")
        with pytest.raises(ValueError, match="probability"):
            load_delta(path, ("product",))
