"""Tests for the block-independent-disjoint (x-tuple) event model."""

from __future__ import annotations

from itertools import product as cartesian

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import ValuationError
from repro.lineage import Var, evaluate, land, lnot, lor, variables
from repro.prob import BlockEventSpace, probability_bid, probability_shannon

a, b, c, d = Var("a"), Var("b"), Var("c"), Var("d")
PROBS = {"a": 0.3, "b": 0.4, "c": 0.5, "d": 0.2}


def brute_force_bid(formula, space: BlockEventSpace) -> float:
    """Enumerate BID worlds: per block one alternative or none; the rest
    of the variables are independent booleans."""
    block_vars = {m for members in space.blocks.values() for m in members}
    free = sorted(set(space.probabilities) - block_vars)
    blocks = list(space.blocks.items())

    total = 0.0
    choices_per_block = [list(members) + [None] for _, members in blocks]
    for picks in cartesian(*choices_per_block) if blocks else [()]:
        block_weight = 1.0
        assignment = {}
        for (name, members), pick in zip(blocks, picks):
            for member in members:
                assignment[member] = member == pick
            if pick is None:
                block_weight *= space.none_probability(name)
            else:
                block_weight *= space.probabilities[pick]
        for bits in cartesian((False, True), repeat=len(free)):
            weight = block_weight
            for var, bit in zip(free, bits):
                weight *= space.probabilities[var] if bit else 1 - space.probabilities[var]
            env = dict(assignment)
            env.update(zip(free, bits))
            env = {v: env.get(v, False) for v in variables(formula) | set(env)}
            if evaluate(formula, env):
                total += weight
    return total


class TestBlockEventSpace:
    def test_empty_blocks_reduce_to_independence(self):
        space = BlockEventSpace(PROBS)
        formula = (a & b) | c
        assert probability_bid(formula, space) == pytest.approx(
            probability_shannon(formula, PROBS)
        )

    def test_block_overweight_rejected(self):
        with pytest.raises(ValuationError):
            BlockEventSpace({"a": 0.7, "b": 0.6}, {"x": ("a", "b")})

    def test_double_membership_rejected(self):
        with pytest.raises(ValuationError):
            BlockEventSpace(PROBS, {"x": ("a", "b"), "y": ("a",)})

    def test_unknown_member_rejected(self):
        with pytest.raises(ValuationError):
            BlockEventSpace({"a": 0.5}, {"x": ("a", "ghost")})

    def test_empty_block_rejected(self):
        with pytest.raises(ValuationError):
            BlockEventSpace(PROBS, {"x": ()})

    def test_none_probability(self):
        space = BlockEventSpace(PROBS, {"x": ("a", "b")})
        assert space.none_probability("x") == pytest.approx(0.3)

    def test_block_of(self):
        space = BlockEventSpace(PROBS, {"x": ("a", "b")})
        assert space.block_of("a") == "x"
        assert space.block_of("c") is None


class TestProbabilityBid:
    def test_mutual_exclusion_conjunction_is_zero(self):
        space = BlockEventSpace(PROBS, {"x": ("a", "b")})
        assert probability_bid(a & b, space) == pytest.approx(0.0)

    def test_disjunction_adds_up(self):
        space = BlockEventSpace(PROBS, {"x": ("a", "b")})
        assert probability_bid(a | b, space) == pytest.approx(0.7)

    def test_unknown_variable(self):
        space = BlockEventSpace(PROBS)
        with pytest.raises(ValuationError):
            probability_bid(Var("ghost"), space)

    def test_negated_alternative(self):
        space = BlockEventSpace(PROBS, {"x": ("a", "b")})
        # ¬a holds when b is chosen (0.4) or nothing is chosen (0.3).
        assert probability_bid(lnot(a), space) == pytest.approx(0.7)

    def test_cross_block_independence(self):
        space = BlockEventSpace(PROBS, {"x": ("a", "b"), "y": ("c", "d")})
        assert probability_bid(a & c, space) == pytest.approx(0.3 * 0.5)

    @given(
        st.booleans(),
        st.integers(0, 3),
    )
    def test_small_cases_match_brute_force(self, two_blocks, shape):
        blocks = {"x": ("a", "b")}
        if two_blocks:
            blocks["y"] = ("c", "d")
        space = BlockEventSpace(PROBS, blocks)
        formula = [
            (a & c) | (b & d),
            lor(a, land(b, c)),
            land(lnot(a), lor(b, d)),
            lor(land(a, d), land(lnot(b), c)),
        ][shape]
        assert probability_bid(formula, space) == pytest.approx(
            brute_force_bid(formula, space)
        )

    def test_sensor_xtuple_scenario(self):
        """An RFID tag is in zone A xor zone B; a second reading is
        independent.  P(consistent sighting) via lineage."""
        space = BlockEventSpace(
            {"inA": 0.6, "inB": 0.3, "read2": 0.8},
            {"tagPosition": ("inA", "inB")},
        )
        formula = land(Var("inA"), Var("read2"))
        assert probability_bid(formula, space) == pytest.approx(0.6 * 0.8)
        contradictory = land(Var("inA"), Var("inB"))
        assert probability_bid(contradictory, space) == pytest.approx(0.0)
