"""Differential suite: columnar execution ≡ tuple path, bit for bit.

The columnar engine (DESIGN.md §15) sweeps packed integer columns and
valuates lineage through compiled opcode programs; its contract is the
same as the parallel engine's (PR 4): for every operator — the three set
operations, all five generalized joins, incremental view refresh — and
at worker counts {1, 2}, flipping ``REPRO_COLUMNAR`` must not change a
single bit of the result: same tuples in the same order, same intervals,
float-exact probabilities, **identical interned lineage objects**
(``is``, not ``==``), and the same valuation-memo hit/miss counters.

The memo-eviction regression tests pin satellite 1: a bucket at
``cache_max_entries`` evicts a bounded oldest-first chunk instead of
clearing wholesale, never drops entries the current batch warmed, and
keeps the hit/miss counters serial-exact.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.algebra.join import JOIN_KINDS, tp_join_operation
from repro.core.setops import OPERATIONS, tp_set_operation
from repro.datasets import generate_join_pair, generate_pair
from repro.exec.config import ParallelConfig, columnar_execution, parallel_execution
from repro.exec.pool import shutdown_pools
from repro.lineage.formula import Var, land, lor
from repro.prob.valuation import (
    EventMap,
    ProbabilityOptions,
    clear_valuation_cache,
    probability_batch,
    valuation_cache_stats,
)
from repro.query.parser import parse_query
from repro.store import MaterializedView, SegmentStore

from .strategies import tp_join_pair, tp_relation_pair

SET_OPS = tuple(OPERATIONS)

pytestmark = pytest.mark.filterwarnings(
    "ignore::pytest.PytestUnraisableExceptionWarning"
)


def teardown_module(module) -> None:
    shutdown_pools()


def force_parallel(workers: int) -> ParallelConfig:
    return ParallelConfig(workers=workers, min_tuples=0, min_formulas=0)


def assert_bit_identical(columnar, reference) -> None:
    """Same tuples, same order, same interned lineage, same floats."""
    assert columnar.schema.attributes == reference.schema.attributes
    assert len(columnar) == len(reference)
    for c, t in zip(columnar, reference):
        assert c.fact == t.fact
        assert c.interval == t.interval
        assert c.lineage is t.lineage, (
            f"lineage not identity-equal: {c.lineage} vs {t.lineage}"
        )
        assert c.p == t.p  # float-exact, not approximate
    assert dict(columnar.events) == dict(reference.events)


# ----------------------------------------------------------------------
# set operations
# ----------------------------------------------------------------------
class TestSetOperationsDifferential:
    @pytest.mark.parametrize("op", SET_OPS)
    @settings(max_examples=25, deadline=None)
    @given(pair=tp_relation_pair())
    def test_random_pairs(self, op, pair):
        r, s = pair
        reference = tp_set_operation(op, r, s)
        with columnar_execution(True):
            columnar = tp_set_operation(op, r, s)
        assert_bit_identical(columnar, reference)

    @pytest.mark.parametrize("op", SET_OPS)
    def test_fig8_scale_multi_fact(self, op):
        r, s = generate_pair(3000, n_facts=7, seed=11)
        reference = tp_set_operation(op, r, s)
        with columnar_execution(True):
            columnar = tp_set_operation(op, r, s)
        assert_bit_identical(columnar, reference)

    @pytest.mark.parametrize("workers", (1, 2))
    @pytest.mark.parametrize("op", SET_OPS)
    def test_columnar_with_worker_pool(self, op, workers):
        """Columnar on top of the pool: chunked sweeps run in workers
        (which force the tuple path), residual sweeps and valuation run
        columnar — the combination must still be bit-identical."""
        r, s = generate_pair(1200, n_facts=5, seed=3)
        reference = tp_set_operation(op, r, s)
        with parallel_execution(force_parallel(workers)), columnar_execution(True):
            columnar = tp_set_operation(op, r, s)
        assert_bit_identical(columnar, reference)

    def test_cache_stats_identical(self):
        """The memo's observable counters must not move under columnar."""
        r, s = generate_pair(600, n_facts=3, seed=7)

        def run():
            clear_valuation_cache()
            result = tp_set_operation("union", r, s)
            return result, valuation_cache_stats()

        reference, ref_stats = run()
        with columnar_execution(True):
            columnar, col_stats = run()
        assert_bit_identical(columnar, reference)
        assert col_stats == ref_stats


# ----------------------------------------------------------------------
# generalized joins
# ----------------------------------------------------------------------
class TestJoinsDifferential:
    @pytest.mark.parametrize("kind", JOIN_KINDS)
    @settings(max_examples=20, deadline=None)
    @given(pair=tp_join_pair())
    def test_random_pairs(self, kind, pair):
        r, s = pair
        reference = tp_join_operation(kind, r, s, ("k",))
        with columnar_execution(True):
            columnar = tp_join_operation(kind, r, s, ("k",))
        assert_bit_identical(columnar, reference)

    @pytest.mark.parametrize("kind", JOIN_KINDS)
    def test_join_workload_scale(self, kind):
        r, s = generate_join_pair(2000, n_keys=9, seed=2)
        reference = tp_join_operation(kind, r, s, ("key",))
        with columnar_execution(True):
            columnar = tp_join_operation(kind, r, s, ("key",))
        assert_bit_identical(columnar, reference)

    @pytest.mark.parametrize("kind", ("left_outer", "full_outer", "anti"))
    @settings(max_examples=15, deadline=None)
    @given(pair=tp_join_pair(s_rest=False))
    def test_degenerate_layouts(self, kind, pair):
        """Key-only right side: matched and preserved facts coincide."""
        r, s = pair
        reference = tp_join_operation(kind, r, s, ("k",))
        with columnar_execution(True):
            columnar = tp_join_operation(kind, r, s, ("k",))
        assert_bit_identical(columnar, reference)

    @pytest.mark.parametrize("workers", (1, 2))
    @pytest.mark.parametrize("kind", JOIN_KINDS)
    def test_columnar_with_worker_pool(self, kind, workers):
        r, s = generate_join_pair(1000, n_keys=5, seed=4)
        reference = tp_join_operation(kind, r, s, ("key",))
        with parallel_execution(force_parallel(workers)), columnar_execution(True):
            columnar = tp_join_operation(kind, r, s, ("key",))
        assert_bit_identical(columnar, reference)


# ----------------------------------------------------------------------
# incremental view refresh
# ----------------------------------------------------------------------
def _mutate(store: SegmentStore, seed: int) -> None:
    tuples = list(store.iter_sorted())
    victims = tuples[seed % max(1, len(tuples)) :: 3][:20]
    deletes = [(*t.fact, t.start, t.end) for t in victims]
    inserts = [
        (*t.fact, t.start, max(t.start + 1, t.end - 1), 0.37) for t in victims
    ]
    store.apply(inserts=inserts, deletes=deletes)


class TestIncrementalRefreshDifferential:
    @pytest.mark.parametrize(
        "query,maker",
        [
            ("r - (r & s)", lambda: generate_pair(800, n_facts=4, seed=9)),
            ("r | s", lambda: generate_pair(800, seed=13)),
            (
                "r LEFT OUTER JOIN s ON key",
                lambda: generate_join_pair(800, n_keys=5, seed=9),
            ),
            (
                "r ANTI JOIN s ON key",
                lambda: generate_join_pair(800, n_keys=5, seed=21),
            ),
        ],
    )
    def test_refresh_matches_tuple_path(self, query, maker):
        r0, s0 = maker()
        ast = parse_query(query)

        reference_stores = {
            "r": SegmentStore.from_relation(r0),
            "s": SegmentStore.from_relation(s0),
        }
        reference_view = MaterializedView("v", ast, reference_stores, policy="manual")

        columnar_stores = {
            "r": SegmentStore.from_relation(r0),
            "s": SegmentStore.from_relation(s0),
        }
        columnar_view = MaterializedView("v", ast, columnar_stores, policy="manual")

        for round_no in range(3):
            _mutate(reference_stores["r"], seed=round_no)
            _mutate(columnar_stores["r"], seed=round_no)
            reference_view.refresh()
            with columnar_execution(True):
                columnar_view.refresh()
            assert_bit_identical(columnar_view.relation(), reference_view.relation())


# ----------------------------------------------------------------------
# whole-database queries through the constructor knob
# ----------------------------------------------------------------------
class TestDatabaseKnob:
    QUERIES = (
        ("r - (r & s)", lambda: generate_pair(400, n_facts=4, seed=9)),
        (
            "r FULL OUTER JOIN s ON key",
            lambda: generate_join_pair(400, n_keys=5, seed=9),
        ),
    )

    @pytest.mark.parametrize("level", ("off", "safe"))
    @pytest.mark.parametrize("query,maker", QUERIES)
    def test_query_results_bit_identical(self, query, maker, level):
        from repro.db import TPDatabase

        r, s = maker()

        def build(columnar):
            db = TPDatabase(columnar=columnar)
            db.register(r.rename("r"))
            db.register(s.rename("s"))
            return db

        reference = build(False).query(query, optimize=level)
        columnar = build(True).query(query, optimize=level)
        assert_bit_identical(columnar, reference)

    def test_constructor_overrides_ambient(self):
        from repro.db import TPDatabase

        r, s = generate_pair(200, n_facts=2, seed=1)
        db = TPDatabase(columnar=False)
        db.register(r.rename("r"))
        db.register(s.rename("s"))
        reference = db.query("r | s")
        with columnar_execution(True):
            pinned = db.query("r | s")  # db says False, ambient says True
        assert_bit_identical(pinned, reference)


# ----------------------------------------------------------------------
# compiled valuation programs + bounded memo eviction (satellite 1)
# ----------------------------------------------------------------------
def _formula_corpus(n: int, events: EventMap) -> list:
    """``n`` distinct 1OF formulas over fresh variables, each repeated
    twice in the returned batch (first occurrence = miss, second = hit)."""
    batch = []
    for i in range(n):
        x, y, z = Var(f"cx{i}"), Var(f"cy{i}"), Var(f"cz{i}")
        events.update({f"cx{i}": 0.3, f"cy{i}": 0.6, f"cz{i}": 0.9})
        batch.append(lor(land(x, ~y), z))
    return batch + list(batch)


class TestCompiledValuation:
    def test_program_matches_tree_recursion(self):
        events = EventMap()
        batch = _formula_corpus(40, events)
        clear_valuation_cache()
        reference = probability_batch(batch, events)
        ref_stats = valuation_cache_stats()
        clear_valuation_cache()
        with columnar_execution(True):
            compiled = probability_batch(batch, events)
            col_stats = valuation_cache_stats()
        assert compiled == reference  # float-exact
        assert col_stats == ref_stats

    @pytest.mark.parametrize("columnar", (False, True))
    def test_bounded_eviction_keeps_counters_serial_exact(self, columnar):
        """A tiny cache cap must not change hits/misses: the old
        wholesale ``bucket.clear()`` dropped same-batch entries and
        turned would-be hits into recomputed misses."""
        events = EventMap()
        batch = _formula_corpus(100, events)  # 200 formulas, 100 distinct
        options = ProbabilityOptions(cache_max_entries=10)

        clear_valuation_cache()
        with columnar_execution(columnar):
            capped = probability_batch(batch, events, options=options)
            capped_stats = valuation_cache_stats()
        clear_valuation_cache()
        with columnar_execution(columnar):
            uncapped = probability_batch(batch, events)
            uncapped_stats = valuation_cache_stats()

        assert capped == uncapped
        assert capped_stats["hits"] == uncapped_stats["hits"] == 100
        assert capped_stats["misses"] == uncapped_stats["misses"] == 100

    def test_eviction_is_bounded_not_wholesale(self):
        """Across batches the bucket stays near the cap: old entries go,
        the newest survive — never a full clear."""
        events = EventMap()
        options = ProbabilityOptions(cache_max_entries=8)
        clear_valuation_cache()
        for i in range(6):
            x = Var(f"ev{i}")
            events[f"ev{i}"] = 0.5
            probability_batch([land(x, x)], events)
        # Mutating events bumps the epoch; valuate a long batch in one
        # epoch so the cap engages mid-run.
        batch = _formula_corpus(30, events)
        probability_batch(batch, events, options=options)
        stats = valuation_cache_stats()
        # Everything the batch computed is protected while it runs, so
        # the bucket may exceed the cap by the batch's distinct count —
        # but never by the wholesale-clear signature of entries == the
        # final sub-batch only.
        assert stats["entries"] >= 30

    def test_next_insert_after_batch_trims_to_cap(self):
        events = EventMap()
        options = ProbabilityOptions(cache_max_entries=8)
        clear_valuation_cache()
        batch = _formula_corpus(30, events)
        probability_batch(batch, events, options=options)
        x = Var("post")
        events["post"] = 0.5
        # New epoch, fresh bucket: the overshoot bucket above is simply
        # retired with its epoch; the new bucket respects the cap.
        probability_batch([land(x, ~x)], events, options=options)
        stats = valuation_cache_stats()
        assert stats["memo_epochs"] >= 2
