"""Tests for one-occurrence-form detection."""

from __future__ import annotations

from repro.lineage import (
    FALSE,
    TRUE,
    Var,
    check_one_occurrence_form,
    is_one_occurrence_form,
    land,
    lnot,
    lor,
)

a, b, c = Var("a"), Var("b"), Var("c")


class TestIsOneOccurrenceForm:
    def test_atomic(self):
        assert is_one_occurrence_form(a)

    def test_distinct_variables(self):
        assert is_one_occurrence_form(a & ~(b | c))

    def test_repeated_variable(self):
        assert not is_one_occurrence_form((a & b) | (a & c))

    def test_repetition_under_negation(self):
        assert not is_one_occurrence_form(a & ~a)

    def test_constants(self):
        assert is_one_occurrence_form(TRUE)
        assert is_one_occurrence_form(FALSE)

    def test_deeply_nested(self):
        formula = lor(land(a, lnot(b)), c)
        assert is_one_occurrence_form(formula)


class TestCheckOneOccurrenceForm:
    def test_reports_repeats_sorted(self):
        formula = land(lor(a, b), lor(a, c), b)
        assert check_one_occurrence_form(formula) == ["a", "b"]

    def test_empty_for_1of(self):
        assert check_one_occurrence_form(a & b) == []
