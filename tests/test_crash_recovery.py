"""Deterministic crash fault injection over the durability layer (§12).

The harness enumerates *every* write/fsync/rename boundary a workload
crosses (dry-run with a counting hook), then re-runs the workload once
per boundary with a simulated crash injected exactly there.  After each
crash the store is recovered from disk and held against an in-memory
oracle that saw only the committed prefix:

* a transaction whose WAL record was fully written (the
  ``wal.append.record`` boundary was crossed) must survive recovery
  bit-identically — facts, intervals, re-interned lineage, event map,
  epoch and identifier counter;
* a transaction cut anywhere earlier must vanish completely (its torn
  record is truncated, never half-applied);
* recovering twice must equal recovering once (idempotence), and the
  recovered store must accept further transactions.

Because :class:`SimulatedCrash` only stops the *process'* execution —
the kernel keeps every byte already handed to the unbuffered file — the
committed prefix is exactly determined by which boundaries were crossed,
making the oracle deterministic rather than probabilistic.
"""

from __future__ import annotations

from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.database import TPDatabase
from repro.store import (
    SegmentStore,
    SimulatedCrash,
    StorePersistence,
    fault_hook,
    recover_store,
    scan_wal,
    store_state,
    write_checkpoint,
)
from repro.store.recovery import RecoveryError

SEED_ROWS = [("milk", 2, 10, 0.3), ("chips", 4, 7, 0.8)]
FACTS = ("milk", "chips", "soda", "beer")


# ----------------------------------------------------------------------
# workload scripts: intents resolved deterministically against the store
# ----------------------------------------------------------------------
def _resolve_step(store: SegmentStore, intent: dict) -> tuple[list, list]:
    """Turn a step intent into concrete insert/delete rows.

    Pure function of the store's current content, so the oracle run and
    every crash run resolve identically up to the crash point.  Inserts
    are placed past the store's current time span, which keeps every
    script applicable (duplicate-freeness can't be violated)."""
    existing = list(store.iter_sorted())
    deletes: list = []
    for pick in intent["delete_picks"]:
        if existing:
            t = existing[pick % len(existing)]
            row = (*t.fact, t.start, t.end)
            if row not in deletes:
                deletes.append(row)
    base = max((t.end for t in existing), default=0)
    inserts = [
        (fact, base + offset + i * 20, base + offset + i * 20 + length, p)
        for i, (offset, length, fact, p) in enumerate(intent["inserts"])
    ]
    return inserts, deletes


@st.composite
def crash_script(draw, max_steps: int = 3):
    """Random transaction intents, including delete-everything sweeps
    and delete+re-insert of the same fact (``removed_events`` replay)."""
    steps = []
    for _ in range(draw(st.integers(min_value=1, max_value=max_steps))):
        steps.append(
            {
                "delete_picks": draw(
                    st.lists(st.integers(min_value=0, max_value=20), max_size=2)
                ),
                "inserts": draw(
                    st.lists(
                        st.tuples(
                            st.integers(min_value=0, max_value=5),
                            st.integers(min_value=1, max_value=4),
                            st.sampled_from(FACTS),
                            st.floats(min_value=0.05, max_value=0.95).map(
                                lambda x: round(x, 3)
                            ),
                        ),
                        max_size=2,
                    )
                ),
            }
        )
    return steps


#: The fixed script the exhaustive boundary sweep runs: four steps mixing
#: inserts, targeted deletes and a delete+re-insert, sized so the
#: ``checkpoint_every=2`` auto-checkpoint (and its WAL rotation) fires
#: mid-workload — every fault point of every protocol gets crossed.
FIXED_SCRIPT = [
    {"delete_picks": [], "inserts": [(0, 3, "soda", 0.5), (2, 2, "beer", 0.4)]},
    {"delete_picks": [0, 1], "inserts": [(1, 4, "milk", 0.7)]},
    {"delete_picks": [0], "inserts": [(0, 2, "soda", 0.6)]},
    {"delete_picks": [], "inserts": [(3, 1, "chips", 0.9)]},
]


class CrashHook:
    """Counts fault points; crashes at the ``crash_at``-th (1-based).

    The counters update *before* the crash decision: a trip marks a
    boundary whose preceding operation already completed, so a crash at
    ``wal.append.record`` still counts that record as committed and a
    crash at ``ckpt.renamed`` still counts the checkpoint as durable.
    """

    def __init__(self, crash_at: int | None = None) -> None:
        self.crash_at = crash_at
        self.count = 0
        self.committed = 0
        self.base_durable = False

    def __call__(self, name: str) -> None:
        self.count += 1
        if name == "wal.append.record":
            self.committed += 1
        if name == "ckpt.renamed":
            self.base_durable = True
        if self.count == self.crash_at:
            raise SimulatedCrash(f"{name} (boundary #{self.count})")


def _run_workload(
    data_dir: Path, script: list, hook: CrashHook, *, durability: str = "commit"
) -> None:
    """The workload under test: seed a relation, convert it to a durable
    store, run the script's transactions, close cleanly."""
    db = None
    try:
        with fault_hook(hook):
            db = TPDatabase(
                data_dir=data_dir, durability=durability, checkpoint_every=2
            )
            db.create_relation("r", ("product",), SEED_ROWS)
            db.store("r")  # convert: seed checkpoint + WAL creation
            for intent in script:
                inserts, deletes = _resolve_step(db.store("r"), intent)
                db.apply("r", inserts=inserts, deletes=deletes)
            db.close()
    finally:
        # Release file handles without draining: a real crash would not
        # get to flush the lost tail either.
        if db is not None:
            for persistence in db._persistence.values():
                handle = persistence.wal._file
                if handle is not None:
                    handle.close()
                    persistence.wal._file = None


def _oracle_states(script: list) -> list:
    """Store states after 0, 1, 2, … committed transactions (in memory)."""
    db = TPDatabase()
    db.create_relation("r", ("product",), SEED_ROWS)
    store = db.store("r")
    states = [store_state(store)]
    for intent in script:
        inserts, deletes = _resolve_step(store, intent)
        changeset = db.apply("r", inserts=inserts, deletes=deletes)
        if changeset:  # exactly the transactions that produce a WAL record
            states.append(store_state(store))
    return states


def _verify_crash_recovery(
    data_dir: Path, hook: CrashHook, oracle: list, *, durability: str = "commit"
) -> None:
    """Recovered state == oracle at the committed prefix; twice == once;
    and the recovered store accepts further transactions."""
    once = TPDatabase(data_dir=data_dir, durability=durability)
    twice = TPDatabase(data_dir=data_dir, durability=durability)
    try:
        if not hook.base_durable:
            # Crash before the seed checkpoint's rename: nothing durable
            # ever existed, so the store must be cleanly absent.
            assert hook.committed == 0
            assert "r" not in once._stores and not once.recovery_reports
            return
        assert hook.committed < len(oracle)
        expected = oracle[hook.committed]
        assert store_state(once._stores["r"]) == expected
        assert store_state(twice._stores["r"]) == expected  # idempotent
        # The recovered store must be fully live: append one more
        # transaction and survive another reopen.
        once.insert("r", [("post", 1000, 1005, 0.5)])
        after = store_state(once._stores["r"])
        once.close()
        again = TPDatabase(data_dir=data_dir, durability=durability)
        try:
            assert store_state(again._stores["r"]) == after
        finally:
            again.close()
    finally:
        once.close()
        twice.close()


def _sweep(tmp_path: Path, script: list, *, durability: str = "commit") -> None:
    """Dry-run to count boundaries, then one crash run per boundary."""
    dry = CrashHook(crash_at=None)
    _run_workload(tmp_path / "dry", script, dry, durability=durability)
    assert dry.count > 0
    oracle = _oracle_states(script)
    for boundary in range(1, dry.count + 1):
        data_dir = tmp_path / f"crash-{boundary:03d}"
        hook = CrashHook(crash_at=boundary)
        with pytest.raises(SimulatedCrash):
            _run_workload(data_dir, script, hook, durability=durability)
        _verify_crash_recovery(data_dir, hook, oracle, durability=durability)


class TestCrashSweep:
    def test_dry_run_matches_oracle(self, tmp_path):
        """Sanity: without any crash, disk state equals the final oracle."""
        _run_workload(tmp_path / "d", FIXED_SCRIPT, CrashHook(None))
        store, report = recover_store(tmp_path / "d" / "r")
        assert report.damage is None and report.truncated_bytes == 0
        assert store_state(store) == _oracle_states(FIXED_SCRIPT)[-1]

    def test_every_boundary_commit_mode(self, tmp_path):
        _sweep(tmp_path, FIXED_SCRIPT, durability="commit")

    def test_every_boundary_batch_mode(self, tmp_path):
        """``batch`` skips per-commit fsync; the simulated-crash model
        (no kernel loss) keeps the same committed-prefix oracle."""
        _sweep(tmp_path, FIXED_SCRIPT, durability="batch")

    @given(script=crash_script())
    @settings(max_examples=6, deadline=None)
    def test_every_boundary_random_scripts(self, script, tmp_path_factory):
        _sweep(tmp_path_factory.mktemp("crash"), script)


class TestRecoveryEdgeCases:
    def _durable_store(self, directory, *, rows=3, checkpoint_every=None):
        store = SegmentStore("e", ("k",))
        persistence = StorePersistence.attach(
            store, directory, checkpoint_every=checkpoint_every
        )
        for i in range(rows):
            store.insert([(f"k{i}", i * 10, i * 10 + 5, 0.5)])
            persistence.on_commit()
        return store, persistence

    def test_empty_directory_is_not_a_store(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(RecoveryError):
            recover_store(tmp_path / "empty")
        db = TPDatabase(data_dir=tmp_path)  # skips it instead of failing
        assert not db.recovery_reports
        db.close()

    def test_zero_length_wal_with_checkpoint(self, tmp_path):
        store, persistence = self._durable_store(tmp_path / "e")
        write_checkpoint(store, tmp_path / "e")
        persistence.close()
        (tmp_path / "e" / "wal.log").write_bytes(b"")
        recovered, report = recover_store(tmp_path / "e")
        assert store_state(recovered) == store_state(store)
        assert report.replayed == 0

    def test_zero_length_wal_without_checkpoint(self, tmp_path):
        (tmp_path / "e").mkdir()
        (tmp_path / "e" / "wal.log").write_bytes(b"")
        with pytest.raises(RecoveryError):
            recover_store(tmp_path / "e")

    def test_checkpoint_only_no_wal(self, tmp_path):
        store, persistence = self._durable_store(tmp_path / "e")
        write_checkpoint(store, tmp_path / "e")
        persistence.close()
        (tmp_path / "e" / "wal.log").unlink()
        recovered, report = recover_store(tmp_path / "e")
        assert store_state(recovered) == store_state(store)
        assert report.checkpoint_epoch == store.epoch

    def test_wal_only_no_checkpoint(self, tmp_path):
        """A store created empty never wrote a seed checkpoint: the WAL
        alone must reconstruct it, including deletes."""
        store, persistence = self._durable_store(tmp_path / "e")
        store.delete([("k1", 10, 15)])
        persistence.on_commit()
        persistence.close()
        assert not list((tmp_path / "e").glob("checkpoint-*"))
        recovered, report = recover_store(tmp_path / "e")
        assert report.checkpoint_epoch is None
        assert store_state(recovered) == store_state(store)

    def test_garbage_suffix_truncated(self, tmp_path):
        store, persistence = self._durable_store(tmp_path / "e")
        persistence.close()
        wal = tmp_path / "e" / "wal.log"
        good = wal.read_bytes()
        wal.write_bytes(good + b"\x99" * 17)
        recovered, report = recover_store(tmp_path / "e")
        assert store_state(recovered) == store_state(store)
        assert report.truncated_bytes == 17
        assert wal.read_bytes() == good  # repaired in place
        _, second = recover_store(tmp_path / "e")
        assert second.damage is None and second.truncated_bytes == 0

    def test_corrupt_mid_record_byte_drops_only_the_tail(self, tmp_path):
        store, persistence = self._durable_store(tmp_path / "e", rows=3)
        state_before_last = None
        # Rebuild the two-commit state the corruption should land us on.
        oracle = SegmentStore("e", ("k",))
        for i in range(2):
            oracle.insert([(f"k{i}", i * 10, i * 10 + 5, 0.5)])
        state_before_last = store_state(oracle)
        persistence.close()
        wal = tmp_path / "e" / "wal.log"
        data = bytearray(wal.read_bytes())
        data[-5] ^= 0xFF  # flip a byte inside the last record's payload
        wal.write_bytes(bytes(data))
        recovered, report = recover_store(tmp_path / "e")
        assert "checksum mismatch" in (report.damage or "")
        assert store_state(recovered) == state_before_last

    def test_checkpoint_newer_than_wal_tail(self, tmp_path):
        """An old WAL next to a newer checkpoint (rotation lost to a
        crash, or a damaged-then-truncated log): the checkpoint wins,
        and reopening rotates so appends stay contiguous."""
        store, persistence = self._durable_store(tmp_path / "e", rows=2)
        wal = tmp_path / "e" / "wal.log"
        old_wal = wal.read_bytes()  # tail at epoch 2
        store.insert([("k9", 90, 95, 0.5)])
        persistence.on_commit()
        write_checkpoint(store, tmp_path / "e")  # covers epoch 3
        persistence.close()
        wal.write_bytes(old_wal)  # resurrect the stale log
        recovered, report = recover_store(tmp_path / "e")
        assert report.checkpoint_epoch == 3 and report.replayed == 0
        assert store_state(recovered) == store_state(store)
        reopened, _ = StorePersistence.open(tmp_path / "e")
        reopened.store.insert([("k10", 100, 105, 0.5)])
        reopened.on_commit()
        final = store_state(reopened.store)
        reopened.close()
        again, report = recover_store(tmp_path / "e")
        assert store_state(again) == final and report.damage is None

    def test_delete_reinsert_replays_removed_events(self, tmp_path):
        """Deleting a fact's last tuple removes its lineage event; the
        replayed log must remove (and re-mint) the same events, and the
        restored counter must keep post-recovery identifiers collision
        free with the in-memory twin."""
        disk = TPDatabase(data_dir=tmp_path / "d")
        memory = TPDatabase()
        for db in (disk, memory):
            db.create_relation("r", ("product",), SEED_ROWS)
            db.insert("r", [("soda", 1, 4, 0.5)])
            db.delete("r", [("soda", 1, 4), ("milk", 2, 10)])
            db.insert("r", [("soda", 1, 4, 0.6), ("milk", 2, 10, 0.2)])
        disk.close()
        recovered = TPDatabase(data_dir=tmp_path / "d")
        assert store_state(recovered._stores["r"]) == store_state(
            memory._stores["r"]
        )
        # Same next identifier on both sides, or lineage would diverge.
        recovered.insert("r", [("beer", 7, 9, 0.8)])
        memory.insert("r", [("beer", 7, 9, 0.8)])
        assert store_state(recovered._stores["r"]) == store_state(
            memory._stores["r"]
        )
        recovered.close()

    def test_views_resolve_freshness_after_recovery(self, tmp_path):
        db = TPDatabase(data_dir=tmp_path / "d")
        db.create_relation("a", ("product",), SEED_ROWS)
        db.create_relation("b", ("product",), [("milk", 5, 9, 0.6)])
        db.insert("a", [("soda", 1, 3, 0.4)])
        db.create_view("v", "a | b")
        before = db.query("v").to_table()
        db.close()

        recovered = TPDatabase(data_dir=tmp_path / "d")
        recovered.create_view("v", "a | b")  # views are redeclared, not persisted
        assert recovered.query("v").to_table() == before
        recovered.delete("a", [("soda", 1, 3)])
        assert not recovered.view("v").is_fresh()
        after = recovered.query("v").to_table()  # deferred: refresh on read
        assert after != before
        recovered.close()
        # ...and the post-recovery transaction itself was durable.
        final = TPDatabase(data_dir=tmp_path / "d")
        final.create_view("v", "a | b")
        assert final.query("v").to_table() == after
        final.close()

    def test_scan_reports_structured_damage(self, tmp_path):
        wal = tmp_path / "wal.log"
        wal.write_bytes(b"NOTAWAL!" + b"\x00" * 8)
        assert scan_wal(wal).damage == "bad magic"
        assert scan_wal(tmp_path / "absent.log").damage == "missing"
