"""Tests for the algorithm registry and the Table II support matrix."""

from __future__ import annotations

import pytest

from repro import UnsupportedOperationError
from repro.baselines import (
    algorithms_supporting,
    all_algorithms,
    get_algorithm,
    paper_algorithms,
    render_support_matrix,
    support_matrix,
)


class TestRegistry:
    def test_paper_order(self):
        assert [a.name for a in paper_algorithms()] == [
            "LAWA",
            "NORM",
            "TPDB",
            "OIP",
            "TI",
        ]

    def test_all_includes_extras(self):
        names = {a.name for a in all_algorithms()}
        assert "SWEEP" in names
        assert "LAWA-COL" in names

    def test_extras_not_in_paper_matrix(self):
        assert set(support_matrix(paper_only=True)) == {
            "LAWA",
            "NORM",
            "TPDB",
            "OIP",
            "TI",
        }

    def test_get_algorithm_case_insensitive(self):
        assert get_algorithm("lawa").name == "LAWA"
        assert get_algorithm("Ti").name == "TI"

    def test_get_algorithm_unknown(self):
        with pytest.raises(UnsupportedOperationError):
            get_algorithm("POSTGRES")

    def test_fresh_instances(self):
        assert get_algorithm("OIP") is not get_algorithm("OIP")


class TestTable2:
    """The exact content of Table II ("Approach Overview")."""

    def test_matrix_matches_paper(self):
        matrix = support_matrix()
        assert matrix == {
            "LAWA": {"union": True, "intersect": True, "except": True},
            "NORM": {"union": True, "intersect": True, "except": True},
            "TPDB": {"union": True, "intersect": True, "except": False},
            "OIP": {"union": False, "intersect": True, "except": False},
            "TI": {"union": False, "intersect": True, "except": False},
        }

    def test_intersection_most_supported(self):
        matrix = support_matrix()
        by_op = {
            op: sum(row[op] for row in matrix.values())
            for op in ("union", "intersect", "except")
        }
        assert by_op["intersect"] == 5
        assert by_op["except"] == 2  # least-supported operation
        assert by_op["union"] == 3

    def test_algorithms_supporting(self):
        assert [a.name for a in algorithms_supporting("except")] == ["LAWA", "NORM"]
        assert [a.name for a in algorithms_supporting("union")] == [
            "LAWA",
            "NORM",
            "TPDB",
        ]
        assert len(algorithms_supporting("intersect", paper_only=False)) == 7

    def test_render(self):
        text = render_support_matrix()
        assert "LAWA" in text and "✓" in text and "✗" in text
        lawa_line = next(l for l in text.splitlines() if l.startswith("LAWA"))
        assert "✗" not in lawa_line
