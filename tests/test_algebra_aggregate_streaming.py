"""Tests for expected-value aggregation and streaming set operations."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings

from repro import TPRelation, tp_except, tp_intersect, tp_union
from repro.algebra import (
    expected_count,
    expected_sum,
    stream_except,
    stream_intersect,
    stream_union,
)
from repro.core.sorting import sort_tuples

from .strategies import tp_relation, tp_relation_pair


class TestExpectedCount:
    def test_doc_example(self):
        r = TPRelation.from_rows(
            "r", ("x",), [("a", 1, 5, 0.5), ("b", 3, 7, 0.25)]
        )
        pieces = [(str(iv), v) for iv, v in expected_count(r)]
        assert pieces == [("[1,3)", 0.5), ("[3,5)", 0.75), ("[5,7)", 0.25)]

    def test_empty(self):
        empty = TPRelation.from_rows("r", ("x",), [])
        assert len(expected_count(empty)) == 0
        assert expected_count(empty).at(5) == 0.0

    def test_gap_produces_no_piece(self):
        r = TPRelation.from_rows("r", ("x",), [("a", 1, 3, 0.5), ("a", 7, 9, 0.5)])
        function = expected_count(r)
        assert function.at(5) == 0.0
        assert len(function) == 2

    def test_adjacent_equal_levels_merge(self):
        r = TPRelation.from_rows("r", ("x",), [("a", 1, 3, 0.5), ("b", 3, 6, 0.5)])
        function = expected_count(r)
        assert [(str(iv), v) for iv, v in function] == [("[1,6)", 0.5)]

    def test_support(self):
        r = TPRelation.from_rows("r", ("x",), [("a", 2, 4, 0.5)])
        assert str(expected_count(r).support()) == "[2,4)"
        empty = TPRelation.from_rows("r", ("x",), [])
        assert expected_count(empty).support() is None

    @settings(max_examples=40, deadline=None)
    @given(r=tp_relation("r"))
    def test_pointwise_linearity(self, r):
        function = expected_count(r)
        span = r.time_span()
        if span is None:
            return
        for point in range(span.start, span.end):
            expected = sum(
                t.p for t in r if t.interval.contains_point(point) and t.p
            )
            assert function.at(point) == pytest.approx(expected, abs=1e-9)


class TestExpectedSum:
    def test_weighted(self):
        r = TPRelation.from_rows(
            "r", ("item", "qty"), [("milk", 10, 1, 5, 0.5), ("milk", 4, 3, 7, 1.0)]
        )
        function = expected_sum(r, "qty")
        assert function.at(1) == pytest.approx(5.0)
        assert function.at(3) == pytest.approx(9.0)
        assert function.at(6) == pytest.approx(4.0)

    def test_non_numeric_rejected(self):
        r = TPRelation.from_rows("r", ("item",), [("milk", 1, 5, 0.5)])
        with pytest.raises(TypeError):
            expected_sum(r, "item")

    def test_zero_valued_attribute(self):
        r = TPRelation.from_rows(
            "r", ("item", "qty"), [("a", 0, 1, 5, 0.5), ("b", 2, 3, 7, 0.5)]
        )
        function = expected_sum(r, "qty")
        assert function.at(1) == pytest.approx(0.0)
        assert function.at(4) == pytest.approx(1.0)


class TestStreaming:
    @settings(max_examples=40, deadline=None)
    @given(pair=tp_relation_pair())
    def test_streams_equal_materialized(self, pair):
        r, s = pair
        r_sorted = sort_tuples(r.tuples)
        s_sorted = sort_tuples(s.tuples)
        for stream_fn, batch_fn in (
            (stream_union, tp_union),
            (stream_intersect, tp_intersect),
            (stream_except, tp_except),
        ):
            streamed = {
                (t.fact, t.interval, t.lineage)
                for t in stream_fn(iter(r_sorted), iter(s_sorted))
            }
            batch = {
                (t.fact, t.interval, t.lineage)
                for t in batch_fn(r, s, materialize=False)
            }
            assert streamed == batch

    def test_lazy_consumption(self, rel_a, rel_c):
        """The stream yields without exhausting the inputs first."""
        r_sorted = sort_tuples(rel_c.tuples)
        s_sorted = sort_tuples(rel_a.tuples)
        consumed = []

        def tracking(tuples):
            for t in tuples:
                consumed.append(t)
                yield t

        stream = stream_union(tracking(r_sorted), tracking(s_sorted))
        first = next(stream)
        assert first is not None
        assert len(consumed) < len(r_sorted) + len(s_sorted)

    def test_accepts_generators_of_unbounded_prefix(self):
        """Constant state: results appear long before the stream ends."""

        def endless(name):
            for i in itertools.count():
                from repro import Interval, base_tuple

                yield base_tuple(("f",), f"{name}{i}", Interval(3 * i, 3 * i + 2), 0.5)

        stream = stream_intersect(endless("r"), endless("s"))
        first_five = [next(stream) for _ in range(5)]
        assert len(first_five) == 5

    def test_unsorted_input_detected(self):
        from repro import Interval, base_tuple

        bad = [
            base_tuple(("f",), "r2", Interval(10, 12), 0.5),
            base_tuple(("f",), "r1", Interval(0, 2), 0.5),
        ]
        good = [base_tuple(("f",), "s1", Interval(0, 2), 0.5)]
        with pytest.raises(ValueError, match="sorted"):
            list(stream_union(iter(bad), iter(good)))
