"""Joins through the query layer: parser → planner → executor.

The generalized join operators must be reachable end-to-end from the
textual query language, compose with set operations and selections, and
survive the optimizer untouched.
"""

from __future__ import annotations

import pytest

from repro import QueryParseError, UnsupportedOperationError, tp_join
from repro.db import TPDatabase
from repro.query import (
    JoinNode,
    JoinPlan,
    RelationRef,
    analyze,
    execute_plan,
    optimize_query,
    parse_query,
    plan_query,
    relation_references,
)


@pytest.fixture
def db():
    database = TPDatabase()
    database.create_relation(
        "stock",
        ("item", "store"),
        [("milk", "hb", 1, 5, 0.5), ("milk", "aldi", 3, 9, 0.4), ("tea", "hb", 0, 4, 0.9)],
    )
    database.create_relation(
        "prices",
        ("item", "price"),
        [("milk", 2, 3, 8, 0.8), ("beer", 1, 0, 5, 0.6)],
    )
    return database


class TestParsing:
    def test_inner_join_keyword_and_symbol(self):
        assert str(parse_query("r JOIN s ON item")) == "(r ⋈[item] s)"
        assert str(parse_query("r ⋈ s")) == "(r ⋈ s)"

    def test_outer_join_spellings(self):
        assert str(parse_query("r LEFT JOIN s")) == "(r ⟕ s)"
        assert str(parse_query("r left outer join s")) == "(r ⟕ s)"
        assert str(parse_query("r RIGHT OUTER JOIN s")) == "(r ⟖ s)"
        assert str(parse_query("r FULL JOIN s")) == "(r ⟗ s)"
        assert str(parse_query("r ⟕ s")) == "(r ⟕ s)"
        assert str(parse_query("r ⟖ s")) == "(r ⟖ s)"
        assert str(parse_query("r ⟗ s")) == "(r ⟗ s)"

    def test_anti_join_spellings(self):
        assert str(parse_query("r ANTI JOIN s ON k")) == "(r ▷[k] s)"
        assert str(parse_query("r ▷ s")) == "(r ▷ s)"

    def test_on_clause_forms(self):
        plain = parse_query("r JOIN s ON a, b")
        parenthesized = parse_query("r JOIN s ON (a, b)")
        assert isinstance(plain, JoinNode) and plain.on == ("a", "b")
        assert parenthesized.on == ("a", "b")

    def test_join_binds_tighter_than_set_operations(self):
        query = parse_query("a | b JOIN c")
        assert str(query) == "(a ∪ (b ⋈ c))"
        query = parse_query("a LEFT JOIN b - c")
        assert str(query) == "((a ⟕ b) − c)"

    def test_joins_associate_left(self):
        query = parse_query("a JOIN b JOIN c")
        assert str(query) == "((a ⋈ b) ⋈ c)"

    def test_join_with_selection_operand(self):
        query = parse_query("a[item='milk'] LEFT JOIN b ON item")
        assert isinstance(query, JoinNode)
        assert str(query.left) == "σ[item='milk'](a)"

    def test_incomplete_join_rejected(self):
        with pytest.raises(QueryParseError):
            parse_query("a LEFT b")
        with pytest.raises(QueryParseError):
            parse_query("a ANTI b")
        with pytest.raises(QueryParseError):
            parse_query("a JOIN b ON")

    def test_relation_references_traverse_joins(self):
        query = parse_query("a JOIN b ON k | a")
        assert relation_references(query) == ["a", "b", "a"]


class TestPlanning:
    def test_join_plan_bound_to_gtwindow_by_default(self):
        plan = plan_query(parse_query("a LEFT JOIN b ON item"))
        assert isinstance(plan, JoinPlan)
        assert plan.kind == "left_outer"
        assert plan.on == ("item",)
        assert plan.algorithm.name == "GTWINDOW"
        assert "LeftOuterJoin[GTWINDOW] on(item)" in plan.describe()

    def test_join_algorithm_override(self):
        plan = plan_query(parse_query("a ▷ b"), join_algorithm="NAIVE-SWEEP")
        assert plan.algorithm.name == "NAIVE-SWEEP"

    def test_unknown_join_algorithm_rejected(self):
        with pytest.raises(UnsupportedOperationError):
            plan_query(parse_query("a JOIN b"), join_algorithm="GHOST")


class TestExecution:
    def test_inner_join_query_matches_algebra(self, db):
        result = db.query("stock JOIN prices ON item")
        direct = tp_join(
            db.relation("stock"), db.relation("prices"), on=("item",)
        )
        assert result.equivalent_to(direct)

    def test_left_outer_join_end_to_end(self, db):
        result = db.query("stock LEFT OUTER JOIN prices ON item")
        rows = {(t.fact, t.start, t.end, str(t.lineage)) for t in result}
        assert (("tea", "hb", None), 0, 4, "stock3") in rows
        assert (("milk", "hb", 2), 3, 5, "stock1∧prices1") in rows
        assert all(t.p is not None for t in result)

    def test_anti_join_end_to_end(self, db):
        result = db.query("stock ANTI JOIN prices ON item")
        assert result.schema.attributes == ("item", "store")
        facts = {t.fact for t in result}
        assert ("tea", "hb") in facts

    def test_naive_algorithm_selectable(self, db):
        kernel = db.query("stock FULL JOIN prices ON item")
        naive = db.query("stock FULL JOIN prices ON item", join_algorithm="NAIVE-SWEEP")
        assert kernel.equivalent_to(naive)

    def test_join_composes_with_set_operations(self, db):
        db.create_relation(
            "more", ("item", "store"), [("milk", "hb", 4, 7, 0.3)]
        )
        result = db.query("(stock ANTI JOIN prices ON item) | more")
        assert len(result) > 0

    def test_execute_plan_materializes_at_root(self, db):
        plan = plan_query(parse_query("stock ⟕ prices ON item"))
        result = execute_plan(plan, db.catalog)
        assert all(t.p is not None for t in result)


class TestAnalysisAndOptimizer:
    def test_analysis_counts_joins(self):
        analysis = analyze(parse_query("a LEFT JOIN b ON k | a ANTI JOIN c"))
        assert analysis.operations["left_outer_join"] == 1
        assert analysis.operations["anti_join"] == 1
        assert analysis.repeated_relations == ("a",)

    def test_optimizer_preserves_joins(self):
        query = parse_query("a JOIN b ON k | c | d")
        optimized = optimize_query(query)
        assert str(optimized) == "((a ⋈[k] b) ∪ c ∪ d)"

    def test_optimizer_keeps_selection_above_join(self):
        query = parse_query("(a LEFT JOIN b ON k)[item='milk']")
        optimized = optimize_query(query)
        assert str(optimized) == "σ[item='milk']((a ⟕[k] b))"

    def test_explain_renders_join_plan(self, db):
        text = db.explain("stock LEFT JOIN prices ON item")
        assert "LeftOuterJoin[GTWINDOW]" in text
        assert "left_outer_join×1" in text

    def test_join_node_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            JoinNode("semi", RelationRef("a"), RelationRef("b"))
