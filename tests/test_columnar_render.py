"""Tests for the columnar (NumPy) fast path and the ASCII renderers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro import (
    TPRelation,
    UnsupportedOperationError,
    lawa_windows,
    render_timeline,
    render_windows,
    tp_except,
    tp_intersect,
    tp_union,
)
from repro.core.columnar import (
    columnar_except,
    columnar_intersect,
    columnar_set_operation,
    columnar_union,
)
from repro.core.sorting import sort_tuples

from .strategies import tp_relation_pair

PAIRS = (
    (columnar_union, tp_union),
    (columnar_intersect, tp_intersect),
    (columnar_except, tp_except),
)


class TestColumnarEquivalence:
    def test_paper_example(self, rel_a, rel_c):
        for columnar, reference in PAIRS:
            assert columnar(rel_a, rel_c).equivalent_to(reference(rel_a, rel_c))

    @settings(max_examples=50, deadline=None)
    @given(pair=tp_relation_pair())
    def test_random_relations(self, pair):
        r, s = pair
        for columnar, reference in PAIRS:
            expected = reference(r, s)
            actual = columnar(r, s)
            assert actual.equivalent_to(expected), (
                f"{columnar.__name__}:\nexpected:\n{expected.to_table()}\n"
                f"actual:\n{actual.to_table()}"
            )

    @settings(max_examples=30, deadline=None)
    @given(pair=tp_relation_pair(max_facts=3, max_intervals=4))
    def test_unmaterialized_matches(self, pair):
        r, s = pair
        for columnar, reference in PAIRS:
            assert columnar(r, s, materialize=False).contents() == reference(
                r, s, materialize=False
            ).contents()

    def test_dispatch(self, rel_a, rel_c):
        assert columnar_set_operation("union", rel_a, rel_c).equivalent_to(
            tp_union(rel_a, rel_c)
        )

    def test_dispatch_unknown(self, rel_a, rel_c):
        with pytest.raises(UnsupportedOperationError):
            columnar_set_operation("xor", rel_a, rel_c)

    def test_large_synthetic_spotcheck(self):
        from repro.datasets import generate_pair

        r, s = generate_pair(3000, n_facts=7, seed=3)
        for columnar, reference in PAIRS:
            assert columnar(r, s).equivalent_to(reference(r, s))


class TestRenderTimeline:
    def test_fig_style_output(self):
        a = TPRelation.from_rows("a", ("product",), [("milk", 2, 10, 0.3)])
        c = TPRelation.from_rows(
            "c", ("product",), [("milk", 1, 4, 0.6), ("milk", 6, 8, 0.7)]
        )
        text = render_timeline([c, a], fact=("milk",))
        lines = text.splitlines()
        assert lines[0].startswith("time")
        assert lines[1].startswith("c 'milk'")
        assert "[c1" in lines[1] and "[c2" in lines[1]
        assert "[a1" in lines[2]

    def test_all_facts_mode(self, rel_a):
        text = render_timeline([rel_a])
        assert "a 'chips'" in text
        assert "a 'dates'" in text
        assert "a 'milk'" in text

    def test_empty(self):
        empty = TPRelation.from_rows("e", ("x",), [])
        assert render_timeline([empty]) == "(empty timeline)"

    def test_width_guard(self):
        wide = TPRelation.from_rows("w", ("x",), [("v", 0, 10_000, 0.5)])
        with pytest.raises(ValueError, match="too wide"):
            render_timeline([wide])

    def test_gap_dots(self):
        r = TPRelation.from_rows("r", ("x",), [("v", 0, 1, 0.5), ("v", 3, 4, 0.5)])
        text = render_timeline([r])
        lane = text.splitlines()[1]
        assert "." in lane

    def test_doctest(self):
        import doctest

        from repro.core import render

        assert doctest.testmod(render).failed == 0


class TestRenderWindows:
    def test_window_partition(self, rel_a, rel_c):
        c_milk = rel_c.select(product="milk")
        a_milk = rel_a.select(product="milk")
        text = render_windows(
            lawa_windows(sort_tuples(c_milk.tuples), sort_tuples(a_milk.tuples))
        )
        assert "c1;∅" in text.replace(" ", "")
        assert "c1;a1" in text.replace(" ", "")
        assert "∅;a1" in text.replace(" ", "")

    def test_empty(self):
        assert render_windows([]) == "(no windows)"

    def test_width_guard(self):
        from repro import LineageWindow
        from repro.lineage import Var

        wide = [LineageWindow(("f",), 0, 10_000, Var("r1"), None)]
        with pytest.raises(ValueError, match="too wide"):
            render_windows(wide)
