"""Tests for selection syntax in queries (the paper's Example 4 shape)."""

from __future__ import annotations

import pytest

from repro import QueryParseError, tp_except
from repro.db import TPDatabase
from repro.query import (
    RelationRef,
    SelectionNode,
    optimize_query,
    parse_query,
)


@pytest.fixture
def db(rel_a, rel_b, rel_c) -> TPDatabase:
    database = TPDatabase()
    for rel in (rel_a, rel_b, rel_c):
        database.register(rel)
    return database


class TestParsing:
    def test_basic_selection(self):
        ast = parse_query("c[product='milk']")
        assert ast == SelectionNode(RelationRef("c"), "product", "milk")

    def test_selection_on_parenthesized_query(self):
        ast = parse_query("(a | b)[product='milk']")
        assert isinstance(ast, SelectionNode)
        assert ast.attribute == "product"

    def test_stacked_selections(self):
        ast = parse_query("r[item='milk'][store='hb']")
        assert isinstance(ast, SelectionNode)
        assert ast.attribute == "store"
        assert isinstance(ast.child, SelectionNode)

    def test_numeric_values(self):
        assert parse_query("r[qty=12]").value == 12
        assert parse_query("r[price=2.5]").value == 2.5
        assert parse_query("r[delta=-3]").value == -3

    def test_bareword_value(self):
        assert parse_query("r[station=zrh]").value == "zrh"

    def test_str_round_trip_structure(self):
        ast = parse_query("c[product='milk'] - a[product='milk']")
        assert str(ast) == "(σ[product='milk'](c) − σ[product='milk'](a))"

    @pytest.mark.parametrize(
        "text",
        ["r[", "r[product]", "r[product=]", "r[product='milk'", "r[=5]", "r[1=2]"],
    )
    def test_bad_syntax(self, text):
        with pytest.raises(QueryParseError):
            parse_query(text)


class TestExecution:
    def test_example4_query(self, db, rel_a, rel_c):
        """σF='milk'(c) −Tp σF='milk'(a) — the paper's Example 4."""
        result = db.query("c[product='milk'] - a[product='milk']")
        expected = tp_except(
            rel_c.select(product="milk"), rel_a.select(product="milk")
        )
        assert result.equivalent_to(expected)
        rows = {
            (str(t.lineage), t.start, t.end, round(t.p, 6)) for t in result
        }
        assert rows == {
            ("c1", 1, 2, 0.6),
            ("c1∧¬a1", 2, 4, 0.42),
            ("c2∧¬a1", 6, 8, 0.49),
        }

    def test_selection_after_set_op(self, db, rel_a, rel_c):
        whole = db.query("(a | c)[product='chips']")
        expected = db.query("a | c").select(product="chips")
        assert whole.contents() == expected.contents()

    def test_unknown_attribute_raises(self, db):
        from repro import SchemaMismatchError

        with pytest.raises(SchemaMismatchError):
            db.query("a[color='red']")

    def test_analysis_sees_through_selection(self, db):
        analysis = db.analyze("c[product='milk'] - a[product='milk']")
        assert analysis.non_repeating
        assert analysis.relations == ("c", "a")


class TestPushdown:
    def test_selection_pushed_below_set_op(self):
        node = optimize_query(parse_query("(a | b)[product='milk']"))
        assert str(node) == "(σ[product='milk'](a) ∪ σ[product='milk'](b))"

    def test_pushdown_through_multiway(self):
        node = optimize_query(parse_query("(a | b | c)[x=1]"))
        text = str(node)
        assert text.count("σ[x=1]") == 3

    def test_pushdown_preserves_results(self, db):
        plain = db.query("(a | c)[product='milk']")
        optimized = db.query("(a | c)[product='milk']", optimize=True)
        assert optimized.contents() == plain.contents()

    def test_explain_shows_pushed_plan(self, db):
        text = db.explain("(a | c)[product='milk']", optimize=True)
        assert "Select[product='milk']" in text
        assert text.index("Union") < text.index("Select")  # σ below the op
