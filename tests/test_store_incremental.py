"""Property tests: incremental views ≡ full recompute ≡ possible worlds.

Random insert/delete sequences are applied to random duplicate-free
relations behind an incrementally maintained view; after every
transaction the view must be

* **tuple-equivalent** to a full recompute of its query over the current
  store snapshots (facts, intervals, syntactic lineage, probabilities),
  for every supported operator — ∪, ∩, −, inner/left/right/full outer
  and anti joins — and
* **numerically correct** against brute-force possible-worlds
  enumeration at sampled (fact, time-point) positions whenever the event
  space is small enough to enumerate.

The delta generator deliberately produces the awkward cases: empty
transactions, delete-everything sweeps, boundary-touching inserts
(intervals adjacent to survivors) and in-place replacements.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import TPRelation, tp_join_operation, tp_set_operation
from repro.query.parser import parse_query
from repro.semantics.possible_worlds import (
    join_marginal_via_worlds,
    marginal_via_worlds,
)
from repro.store import MaterializedView, SegmentStore
from tests.strategies import tp_join_pair, tp_relation_pair

SET_OPS = ("union", "intersect", "except")
JOIN_KINDS = ("inner", "left_outer", "right_outer", "full_outer", "anti")
SET_QUERIES = {"union": "r | s", "intersect": "r & s", "except": "r - s"}
JOIN_QUERIES = {
    "inner": "r JOIN s ON k",
    "left_outer": "r LEFT OUTER JOIN s ON k",
    "right_outer": "r RIGHT OUTER JOIN s ON k",
    "full_outer": "r FULL OUTER JOIN s ON k",
    "anti": "r ANTI JOIN s ON k",
}

#: Above this many base events the 2^n worlds oracle is skipped.
MAX_WORLD_EVENTS = 10


@st.composite
def delta_script(draw, n_steps: int = 3):
    """A script of transaction *intents*, resolved against live stores.

    Each step draws, per store: how many existing tuples to delete
    (by index — resolved at apply time), whether to delete *everything*,
    and a few insert attempts described by (offset, length, p) relative
    to the store's current time span.  Insert attempts that would
    violate duplicate-freeness are dropped at resolution time, so every
    generated script is applicable; offsets deliberately include 0 so
    boundary-touching (adjacent) intervals occur often.
    """
    steps = []
    for _ in range(draw(st.integers(min_value=1, max_value=n_steps))):
        step = {}
        for name in ("r", "s"):
            step[name] = {
                "wipe": draw(st.booleans()) and draw(st.booleans()),
                "delete_picks": draw(
                    st.lists(st.integers(min_value=0, max_value=30), max_size=3)
                ),
                "inserts": draw(
                    st.lists(
                        st.tuples(
                            st.integers(min_value=0, max_value=12),  # offset
                            st.integers(min_value=1, max_value=4),  # length
                            st.floats(min_value=0.05, max_value=0.95),
                        ),
                        max_size=3,
                    )
                ),
            }
        steps.append(step)
    return steps


def _resolve_and_apply(store: SegmentStore, intent: dict) -> None:
    tuples = list(store.iter_sorted())
    if intent["wipe"]:
        store.delete_where(lambda t: True)
        return
    deletes = []
    picked = set()
    for pick in intent["delete_picks"]:
        if tuples:
            index = pick % len(tuples)
            if index not in picked:
                picked.add(index)
                t = tuples[index]
                deletes.append((*t.fact, t.start, t.end))
    doomed = {(tuples[i].fact, tuples[i].start, tuples[i].end) for i in picked}
    survivors = [
        t for t in tuples if (t.fact, t.start, t.end) not in doomed
    ]
    hi = max((t.end for t in survivors), default=0)
    inserts = []
    taken: dict = {}
    for offset, length, p in intent["inserts"]:
        fact = (
            survivors[offset % len(survivors)].fact
            if survivors
            else tuple("x" for _ in range(store.schema.arity))
        )
        # Offset 0 starts exactly at the current frontier: adjacent to
        # (but, half-open, not overlapping) the latest survivor.
        ts = hi + offset
        te = ts + length
        spans = taken.setdefault(fact, [])
        if all(te <= lo or ts >= s_hi for lo, s_hi in spans) and all(
            not (t.fact == fact and ts < t.end and t.start < te)
            for t in survivors
        ):
            spans.append((ts, te))
            inserts.append((*fact, ts, te, round(p, 3)))
    store.apply(inserts=inserts, deletes=deletes)


def _check_worlds_setop(op: str, r, s, view_relation: TPRelation) -> None:
    events = {**dict(r.events), **dict(s.events)}
    if len(events) > MAX_WORLD_EVENTS:
        return
    for t in list(view_relation)[:4]:
        expected = marginal_via_worlds(op, r, s, t.fact, t.start)
        assert t.p == pytest.approx(expected, abs=1e-9)


def _check_worlds_join(kind: str, r, s, view_relation: TPRelation) -> None:
    events = {**dict(r.events), **dict(s.events)}
    if len(events) > MAX_WORLD_EVENTS:
        return
    for t in list(view_relation)[:3]:
        expected = join_marginal_via_worlds(kind, r, s, ("k",), t.fact, t.start)
        assert t.p == pytest.approx(expected, abs=1e-9)


@pytest.mark.parametrize("op", SET_OPS)
@given(pair=tp_relation_pair(max_facts=2, max_intervals=2), script=delta_script())
@settings(max_examples=25)
def test_setop_view_incremental_vs_recompute_vs_worlds(op, pair, script):
    r0, s0 = pair
    stores = {
        "r": SegmentStore.from_relation(r0),
        "s": SegmentStore.from_relation(s0),
    }
    view = MaterializedView(
        "v", parse_query(SET_QUERIES[op]), stores, policy="manual"
    )
    recompute = MaterializedView(
        "w", parse_query(SET_QUERIES[op]), stores,
        policy="manual", strategy="RECOMPUTE",
    )
    for step in script:
        for name in ("r", "s"):
            _resolve_and_apply(stores[name], step[name])
        view.refresh()
        recompute.refresh()
        incremental = view.relation()
        assert incremental.equivalent_to(recompute.relation())
        # Belt and braces: also against the batch kernel directly.
        reference = tp_set_operation(
            op, stores["r"].snapshot(), stores["s"].snapshot()
        )
        assert incremental.equivalent_to(reference)
        _check_worlds_setop(
            op, stores["r"].snapshot(), stores["s"].snapshot(), incremental
        )


@pytest.mark.parametrize("kind", JOIN_KINDS)
@given(pair=tp_join_pair(max_intervals=2), script=delta_script(n_steps=2))
@settings(max_examples=15)
def test_join_view_incremental_vs_recompute_vs_worlds(kind, pair, script):
    r0, s0 = pair
    stores = {
        "r": SegmentStore.from_relation(r0),
        "s": SegmentStore.from_relation(s0),
    }
    view = MaterializedView(
        "v", parse_query(JOIN_QUERIES[kind]), stores, policy="manual"
    )
    for step in script:
        for name in ("r", "s"):
            _resolve_and_apply(stores[name], step[name])
        view.refresh()
        incremental = view.relation()
        reference = tp_join_operation(
            kind, stores["r"].snapshot(), stores["s"].snapshot(), ("k",)
        )
        assert incremental.equivalent_to(reference)
        _check_worlds_join(
            kind, stores["r"].snapshot(), stores["s"].snapshot(), incremental
        )


@given(pair=tp_relation_pair(max_facts=2, max_intervals=2), script=delta_script())
@settings(max_examples=15)
def test_nested_query_view(pair, script):
    """Dirty regions propagate through operator trees, not just leaves."""
    r0, s0 = pair
    stores = {
        "r": SegmentStore.from_relation(r0),
        "s": SegmentStore.from_relation(s0),
    }
    view = MaterializedView(
        "v", parse_query("(r | s) - (r & s)"), stores, policy="manual"
    )
    for step in script:
        for name in ("r", "s"):
            _resolve_and_apply(stores[name], step[name])
        view.refresh()
        r, s = stores["r"].snapshot(), stores["s"].snapshot()
        reference = tp_set_operation(
            "except",
            tp_set_operation("union", r, s, materialize=False),
            tp_set_operation("intersect", r, s, materialize=False),
        )
        assert view.relation().equivalent_to(reference)


@given(pair=tp_relation_pair(max_facts=2, max_intervals=2))
@settings(max_examples=10)
def test_empty_delta_is_observationally_silent(pair):
    r0, s0 = pair
    stores = {
        "r": SegmentStore.from_relation(r0),
        "s": SegmentStore.from_relation(s0),
    }
    view = MaterializedView("v", parse_query("r - s"), stores, policy="manual")
    before = view.relation()
    stores["r"].apply()  # empty transaction
    assert view.is_fresh()
    assert view.refresh() is False
    assert view.relation() is before  # not even rebuilt
