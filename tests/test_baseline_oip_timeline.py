"""Tests specific to the OIP partitioning and the Timeline Index."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings

from repro import Interval, TPRelation
from repro.baselines.oip import OipAlgorithm, OipPartitioning
from repro.baselines.timeline import TimelineIndex, TimelineIndexAlgorithm

from .strategies import tp_relation, tp_relation_pair

relaxed = settings(
    max_examples=50, suppress_health_check=[HealthCheck.too_slow], deadline=None
)


class TestOipPartitioning:
    def test_tuples_assigned_to_spanning_partition(self):
        r = TPRelation.from_rows(
            "r", ("x",), [("f", 0, 3, 0.5), ("f", 10, 22, 0.5)]
        )
        partitioning = OipPartitioning(list(r.tuples), origin=0, granule_length=5)
        assert set(partitioning.partitions) == {(0, 0), (2, 4)}

    def test_probe_finds_overlapping_partitions(self):
        r = TPRelation.from_rows(
            "r", ("x",), [("f", 0, 3, 0.5), ("f", 10, 22, 0.5)]
        )
        partitioning = OipPartitioning(list(r.tuples), origin=0, granule_length=5)
        assert set(partitioning.probe(0, 1)) == {(0, 0)}
        assert set(partitioning.probe(3, 3)) == {(2, 4)}
        assert set(partitioning.probe(0, 4)) == {(0, 0), (2, 4)}

    def test_probe_deduplicates(self):
        r = TPRelation.from_rows("r", ("x",), [("f", 0, 22, 0.5)])
        partitioning = OipPartitioning(list(r.tuples), origin=0, granule_length=5)
        assert partitioning.probe(0, 4) == [(0, 4)]

    @relaxed
    @given(relation=tp_relation("r"))
    def test_every_tuple_in_exactly_one_partition(self, relation):
        if not len(relation):
            return
        partitioning = OipPartitioning(list(relation.tuples), origin=0, granule_length=3)
        total = sum(len(tuples) for tuples in partitioning.partitions.values())
        assert total == len(relation)

    def test_fixed_granule_length_override(self, rel_a, rel_c):
        fine = OipAlgorithm(granule_length=1)
        coarse = OipAlgorithm(granule_length=1000)
        expected = OipAlgorithm().compute("intersect", rel_a, rel_c)
        assert fine.compute("intersect", rel_a, rel_c).equivalent_to(expected)
        assert coarse.compute("intersect", rel_a, rel_c).equivalent_to(expected)


class TestTimelineIndex:
    def test_events_sorted_ends_before_starts(self):
        r = TPRelation.from_rows(
            "r", ("x",), [("f", 1, 5, 0.5), ("f", 5, 9, 0.5)]
        )
        index = TimelineIndex(r)
        assert index.events == sorted(index.events)
        # At t=5 the end event (is_start=0) precedes the start event.
        at_five = [e for e in index.events if e[0] == 5]
        assert [e[1] for e in at_five] == [0, 1]

    def test_fetch(self, rel_a):
        index = TimelineIndex(rel_a)
        assert index.fetch(0) == rel_a.tuples[0]

    @relaxed
    @given(pair=tp_relation_pair())
    def test_join_pairs_complete_and_unique(self, pair):
        """The merge join must emit exactly the temporally-overlapping
        (rid, sid) pairs, each exactly once — before any fact filter."""
        r, s = pair
        index_r, index_s = TimelineIndex(r), TimelineIndex(s)
        pairs = TimelineIndexAlgorithm._timeline_join(index_r, index_s)
        assert len(pairs) == len(set(pairs)), "duplicate pairs"
        expected = {
            (rid, sid)
            for rid, rt in enumerate(index_r.tuples)
            for sid, st_ in enumerate(index_s.tuples)
            if rt.interval.overlaps(st_.interval)
        }
        assert set(pairs) == expected

    def test_fact_filter_applied_after_pairing(self):
        # Overlapping intervals with different facts: pair formed, then
        # rejected by the non-temporal filter — the TI cost the paper
        # highlights.
        r = TPRelation.from_rows("r", ("x",), [("f", 1, 5, 0.5)])
        s = TPRelation.from_rows("s", ("x",), [("g", 2, 4, 0.5)])
        index_r, index_s = TimelineIndex(r), TimelineIndex(s)
        pairs = TimelineIndexAlgorithm._timeline_join(index_r, index_s)
        assert pairs == [(0, 0)]  # the pair exists ...
        result = TimelineIndexAlgorithm().compute("intersect", r, s)
        assert len(result) == 0  # ... but the filter rejects it


class TestIntervalHelpers:
    def test_interval_reexported(self):
        assert Interval(1, 2).duration == 1
