"""Materialized views: policies, strategies, db wiring, planner reads."""

from __future__ import annotations

import pytest

from repro import UnsupportedOperationError, tp_set_operation
from repro.baselines import (
    get_view_maintenance_strategy,
    view_maintenance_strategies,
)
from repro.db import TPDatabase
from repro.query.parser import parse_query
from repro.store import MaterializedView, SegmentStore


@pytest.fixture
def db(rel_a, rel_b, rel_c) -> TPDatabase:
    database = TPDatabase()
    for relation in (rel_a, rel_b, rel_c):
        database.register(relation)
    return database


class TestViewCorrectness:
    @pytest.mark.parametrize(
        "query", ["a | b", "a & c", "c - (a | b)", "(a | b) - c"]
    )
    def test_view_matches_direct_query(self, db, query):
        view = db.create_view("v", query)
        direct = db.query(query, use_views=False)
        assert db.query("v").equivalent_to(direct)

    @pytest.mark.parametrize("strategy", ["INCREMENTAL", "RECOMPUTE"])
    def test_view_follows_mutations(self, db, strategy):
        db.create_view("v", "c - (a | b)", strategy=strategy)
        db.insert("a", [("beer", 1, 6, 0.5), ("milk", 11, 14, 0.4)])
        db.delete("c", [("milk", 1, 4)])
        db.apply("b", inserts=[("dates", 2, 5, 0.3)], deletes=[("chips", 3, 6)])
        direct = db.query("c - (a | b)", use_views=False)
        assert db.query("v").equivalent_to(direct)

    def test_incremental_equals_recompute(self, db):
        vi = db.create_view("vi", "c - (a | b)", policy="manual")
        vr = db.create_view("vr", "c - (a | b)", policy="manual",
                            strategy="RECOMPUTE")
        db.insert("c", [("beer", 1, 9, 0.7)])
        db.delete("a", [("dates", 1, 3)])
        vi.refresh()
        vr.refresh()
        assert vi.relation().equivalent_to(vr.relation())

    def test_view_over_selection(self, db):
        view = db.create_view("v", "c[product='milk'] - a[product='milk']")
        db.insert("c", [("milk", 11, 13, 0.5), ("chips", 10, 12, 0.6)])
        direct = db.query("c[product='milk'] - a[product='milk']", use_views=False)
        assert view.relation().equivalent_to(direct)

    def test_view_over_join(self, db):
        db.create_relation("prices", ("product", "price"),
                           [("milk", 2, 3, 8, 0.8), ("beer", 1, 0, 5, 0.6)])
        view = db.create_view("v", "c LEFT OUTER JOIN prices ON product")
        db.insert("prices", [("chips", 3, 2, 6, 0.5)])
        db.delete("c", [("chips", 4, 5)])
        direct = db.query("c LEFT OUTER JOIN prices ON product", use_views=False)
        assert view.relation().equivalent_to(direct)


class TestRefreshPolicies:
    def test_deferred_refreshes_on_read(self, db):
        view = db.create_view("v", "a | b", policy="deferred")
        db.insert("a", [("beer", 1, 3, 0.5)])
        assert not view.is_fresh()
        assert any(t.fact == ("beer",) for t in view.relation())
        assert view.is_fresh()

    def test_eager_refreshes_on_write(self, db):
        view = db.create_view("v", "a | b", policy="eager")
        db.insert("a", [("beer", 1, 3, 0.5)])
        assert view.is_fresh()

    def test_manual_serves_stale_until_refreshed(self, db):
        view = db.create_view("v", "a | b", policy="manual")
        before = len(view.relation())
        db.insert("a", [("beer", 1, 3, 0.5)])
        assert not view.is_fresh()
        assert len(view.relation()) == before  # stale by contract
        db.refresh("v")
        assert view.is_fresh() and len(view.relation()) == before + 1

    def test_refresh_reports_content_change(self, db):
        view = db.create_view("v", "a & b", policy="manual")
        db.insert("a", [("beer", 20, 22, 0.5)])  # no intersection partner
        assert view.refresh() is False  # refreshed, nothing changed
        assert view.is_fresh()
        db.insert("b", [("beer", 21, 25, 0.5)])
        assert view.refresh() is True

    def test_unknown_policy_rejected(self, db):
        with pytest.raises(ValueError, match="refresh policy"):
            db.create_view("v", "a | b", policy="sometimes")


class TestDatabaseWiring:
    def test_mutating_plain_relation_converts_to_store(self, db, rel_a):
        db.insert("a", [("beer", 1, 3, 0.5)])
        assert isinstance(db.store("a"), SegmentStore)
        assert len(db.relation("a")) == len(rel_a) + 1
        # Queries read the store snapshot transparently.
        assert any(t.fact == ("beer",) for t in db.query("a | a"))

    def test_planner_reads_fresh_view(self, db):
        db.create_view("q", "c - (a | b)")
        plan_line = db.explain("c - (a | b)").splitlines()[2]
        assert "Scan[q]" in plan_line

    def test_planner_substitutes_subtrees(self, db):
        db.create_view("q", "a | b")
        explain = db.explain("c - (a | b)")
        assert "Scan[q]" in explain and "Union" not in explain

    def test_stale_manual_view_not_substituted(self, db):
        db.create_view("q", "a | b", policy="manual")
        assert "Scan[q]" in db.explain("a | b")  # fresh: substituted
        db.insert("a", [("beer", 1, 3, 0.5)])
        assert "Scan[q]" not in db.explain("a | b")  # stale: recomputed
        direct = db.query("a | b", use_views=False)
        assert db.query("a | b").equivalent_to(direct)

    def test_use_views_false_bypasses(self, db):
        db.create_view("q", "a | b")
        assert "Scan[q]" not in db.explain("a | b", use_views=False)

    def test_view_usable_inside_larger_query(self, db):
        db.create_view("q", "a | b")
        direct = db.query("c - (a | b)", use_views=False)
        assert db.query("c - q").equivalent_to(direct)

    def test_view_name_collisions_rejected(self, db):
        db.create_view("q", "a | b")
        with pytest.raises(ValueError, match="already exists"):
            db.create_view("q", "a & b")
        with pytest.raises(ValueError, match="already names"):
            db.create_view("a", "a & b")

    def test_views_over_views_rejected(self, db):
        db.create_view("q", "a | b")
        with pytest.raises(UnsupportedOperationError, match="views over"):
            db.create_view("qq", "q - c")

    def test_drop_view(self, db):
        db.create_view("q", "a | b")
        db.drop_view("q")
        assert "Scan[q]" not in db.explain("a | b")
        with pytest.raises(KeyError):
            db.view("q")

    def test_mutating_a_view_rejected(self, db):
        db.create_view("q", "a | b")
        with pytest.raises(UnsupportedOperationError, match="view"):
            db.insert("q", [("beer", 1, 3, 0.5)])

    def test_replacing_a_view_base_relation_rejected(self, db):
        """replace=True must not orphan the store a view still reads."""
        db.create_view("q", "a | b")
        with pytest.raises(ValueError, match="referenced by view"):
            db.create_relation("a", ("product",), [("beer", 1, 4, 0.5)],
                               replace=True)
        # Dropping the view unblocks the replacement, and queries see it.
        db.drop_view("q")
        db.create_relation("a", ("product",), [("beer", 1, 4, 0.5)],
                           replace=True)
        assert [t.fact for t in db.query("a | a")] == [("beer",)]

    def test_eager_view_never_serves_stale_after_direct_store_write(self, db):
        """Writes through db.store(...).apply bypass _notify_views; the
        substituted eager view must still re-check freshness on read."""
        db.create_view("q", "c - (a | b)", policy="eager")
        db.store("c").apply(inserts=[("beer", 1, 5, 0.9)])
        direct = db.query("c - (a | b)", use_views=False)
        assert db.query("c - (a | b)").equivalent_to(direct)
        assert db.query("q").equivalent_to(direct)

    def test_change_log_pruned_once_views_consumed(self, db):
        db.create_view("q", "a | b", policy="eager")
        store = db.store("a")
        for i in range(5):
            db.insert("a", [("beer", 20 + 3 * i, 21 + 3 * i, 0.5)])
        # Eager refresh consumes each transaction; the next apply prunes.
        assert store.segment_stats()["log_entries"] <= 1

    def test_manual_view_pins_change_log_until_refresh(self, db):
        view = db.create_view("q", "a | b", policy="manual")
        store = db.store("a")
        for i in range(4):
            db.insert("a", [("beer", 20 + 3 * i, 21 + 3 * i, 0.5)])
        assert store.segment_stats()["log_entries"] == 4  # still needed
        view.refresh()
        db.insert("a", [("tea", 40, 42, 0.5)])
        assert store.segment_stats()["log_entries"] == 1

    def test_events_do_not_leak_under_update_workload(self, db):
        """Delete + re-insert rounds must not grow the event maps."""
        view = db.create_view("q", "a | b", policy="eager")
        store = db.store("a")
        for _ in range(50):
            (t,) = store.tuples_of(("milk",))
            db.apply("a", deletes=[("milk", t.start, t.end)],
                     inserts=[("milk", t.start, t.end, 0.5)])
        assert len(store.events) == 3  # one live variable per tuple
        # The view's event map tracks removals through the change log.
        assert len(view.relation().events) == len(
            db.query("a | b", use_views=False).events
        )

    def test_shared_variable_events_survive_partial_delete(self, rel_a, rel_c):
        """A variable referenced by several lineages must outlive the
        deletion of one of its tuples (refcounting, not 1:1 assumption)."""
        from repro import tp_union

        derived = tp_union(rel_a, rel_c)  # several tuples share a1, c1, …
        store = SegmentStore.from_relation(derived)
        victim = next(t for t in store.iter_sorted() if "a1" in str(t.lineage))
        store.delete([(*victim.fact, victim.start, victim.end)])
        assert "a1" in store.events  # other lineages still reference a1
        remaining = store.snapshot()
        assert remaining.materialize_probabilities() is not None

    def test_base_root_view_over_unmaterialized_store(self, rel_a, rel_c):
        """A view whose root is a bare scan must not write probabilities
        into the store's own tuple lists (they would vanish on the next
        flat-cache rebuild)."""
        from repro import tp_except

        derived = tp_except(rel_a, rel_c, materialize=False)  # p=None tuples
        store = SegmentStore.from_relation(derived)
        view = MaterializedView("v", parse_query("d"), {"d": store})
        assert all(t.p is not None for t in view.relation())
        reference = {
            (t.fact, t.interval): t.p
            for t in tp_except(rel_a, rel_c)
        }
        # Mutating the same fact group rebuilds the store's flat cache;
        # the view must still serve fully materialized probabilities.
        store.insert([("milk", 30, 32, 0.5)])
        served = {(t.fact, t.interval): t.p for t in view.relation()}
        for key, p in reference.items():
            assert served[key] == pytest.approx(p)
        assert all(p is not None for p in served.values())
        # The store itself still holds its original unmaterialized tuples.
        assert any(t.p is None for t in store.iter_sorted())

    def test_unconsumed_store_log_is_capped(self):
        from repro.store.segment import UNCONSUMED_LOG_CAP

        store = SegmentStore("s", ("k",))
        for i in range(UNCONSUMED_LOG_CAP + 50):
            store.insert([("x", 2 * i, 2 * i + 1, 0.5)])
        assert store.segment_stats()["log_entries"] == UNCONSUMED_LOG_CAP


class TestMaintenanceRegistry:
    def test_strategies_registered(self):
        names = [s.name for s in view_maintenance_strategies()]
        assert names == ["INCREMENTAL", "RECOMPUTE"]

    def test_lookup_case_insensitive(self):
        assert get_view_maintenance_strategy("recompute").name == "RECOMPUTE"

    def test_unknown_strategy_rejected(self):
        with pytest.raises(UnsupportedOperationError):
            get_view_maintenance_strategy("MAGIC")


class TestStandaloneViews:
    def test_view_without_database(self, rel_a, rel_b):
        a = SegmentStore.from_relation(rel_a)
        b = SegmentStore.from_relation(rel_b)
        view = MaterializedView("v", parse_query("a - b"), {"a": a, "b": b})
        reference = tp_set_operation("except", a.snapshot(), b.snapshot())
        assert view.relation().equivalent_to(reference)
        a.apply(deletes=[("milk", 2, 10)], inserts=[("milk", 2, 6, 0.9)])
        reference = tp_set_operation("except", a.snapshot(), b.snapshot())
        assert view.relation().equivalent_to(reference)

    def test_delete_everything(self, rel_a, rel_b):
        a = SegmentStore.from_relation(rel_a)
        b = SegmentStore.from_relation(rel_b)
        view = MaterializedView("v", parse_query("a | b"), {"a": a, "b": b})
        a.delete_where(lambda t: True)
        b.delete_where(lambda t: True)
        assert len(view.relation()) == 0
        # Refill after total deletion.
        a.insert([("milk", 1, 4, 0.5)])
        assert len(view.relation()) == 1
