"""Tests for Monte-Carlo estimation and the valuation dispatcher."""

from __future__ import annotations

import random

import pytest

from repro import Method, probability, probability_montecarlo
from repro.lineage import Var
from repro.prob import ProbabilityOptions

a, b, c = Var("a"), Var("b"), Var("c")
PROBS = {"a": 0.3, "b": 0.6, "c": 0.5}


class TestMonteCarlo:
    def test_estimate_close_to_exact(self):
        formula = a & ~(b | c)
        exact = 0.3 * (1 - 0.6) * (1 - 0.5)
        estimate = probability_montecarlo(
            formula, PROBS, samples=50_000, rng=random.Random(7)
        )
        assert abs(estimate.estimate - exact) < 0.01

    def test_interval_contains_exact_usually(self):
        formula = (a & b) | c
        exact = 1 - (1 - 0.3 * 0.6) * (1 - 0.5)
        hits = 0
        for seed in range(20):
            est = probability_montecarlo(
                formula, PROBS, samples=2_000, rng=random.Random(seed)
            )
            if est.low <= exact <= est.high:
                hits += 1
        # 95% CI should cover the target in the vast majority of trials.
        assert hits >= 16

    def test_reproducible_with_seed(self):
        est1 = probability_montecarlo(a | b, PROBS, samples=500, rng=random.Random(3))
        est2 = probability_montecarlo(a | b, PROBS, samples=500, rng=random.Random(3))
        assert est1.estimate == est2.estimate

    def test_float_conversion(self):
        est = probability_montecarlo(a, PROBS, samples=100, rng=random.Random(1))
        assert float(est) == est.estimate

    def test_bad_samples(self):
        with pytest.raises(ValueError):
            probability_montecarlo(a, PROBS, samples=0)

    def test_bad_confidence(self):
        with pytest.raises(ValueError):
            probability_montecarlo(a, PROBS, samples=10, confidence=0.5)

    def test_bounds_clamped(self):
        est = probability_montecarlo(
            a, {"a": 0.999}, samples=50, rng=random.Random(0)
        )
        assert 0.0 <= est.low <= est.high <= 1.0


class TestDispatcher:
    def test_auto_uses_1of_fast_path(self):
        assert probability(a & ~b, PROBS) == pytest.approx(0.3 * 0.4)

    def test_auto_exact_on_repeats(self):
        # Absorption: P(a ∨ (a∧b)) = P(a); the 1OF formula would inflate it.
        assert probability(a | (a & b), PROBS) == pytest.approx(0.3)

    def test_explicit_methods_agree(self):
        formula = (a & b) | (~a & c)
        expected = 0.3 * 0.6 + 0.7 * 0.5
        for method in (Method.SHANNON, Method.BDD):
            assert probability(formula, PROBS, method=method) == pytest.approx(expected)

    def test_explicit_montecarlo(self):
        options = ProbabilityOptions(samples=30_000, rng=random.Random(5))
        estimate = probability(
            (a & b) | (~a & c), PROBS, method=Method.MONTE_CARLO, options=options
        )
        assert abs(estimate - (0.3 * 0.6 + 0.7 * 0.5)) < 0.02

    def test_auto_falls_back_to_sampling_when_wide(self):
        # A chain x0x1 ∨ x1x2 ∨ … repeats every variable twice; with the
        # exact limit lowered the dispatcher must switch to sampling.
        names = [Var(f"x{i}") for i in range(30)]
        formula = names[0] & names[1]
        for left, right in zip(names[1:], names[2:]):
            formula = formula | (left & right)
        probs = {f"x{i}": 0.5 for i in range(30)}
        options = ProbabilityOptions(
            exact_repeated_limit=4, samples=2_000, rng=random.Random(11)
        )
        value = probability(formula, probs, options=options)
        assert 0.0 <= value <= 1.0

    def test_method_1of_validates(self):
        from repro import ValuationError

        with pytest.raises(ValuationError):
            probability(a & ~a, PROBS, method=Method.ONE_OCCURRENCE)
