"""Exact reproduction of the paper's worked examples (Fig. 1c, Fig. 2, Fig. 3)."""

from __future__ import annotations

import pytest

from repro import tp_except, tp_intersect, tp_union

from .conftest import rows_of


class TestFig1QueryResult:
    """Q = c −Tp (a ∪Tp b) must produce exactly Fig. 1c."""

    def test_rows(self, rel_a, rel_b, rel_c):
        result = tp_except(rel_c, tp_union(rel_a, rel_b))
        assert rows_of(result) == {
            (("milk",), "c1", 1, 2, 0.6),
            (("milk",), "c1∧¬a1", 2, 4, 0.42),
            (("milk",), "c2∧¬(a1∨b1)", 6, 8, 0.196),
            (("chips",), "c3∧¬(a2∨b2)", 4, 5, 0.014),
            (("chips",), "c4", 7, 9, 0.8),
        }


class TestFig2SelectedOutputs:
    """Fig. 2's selected tuples of a −Tp c."""

    def test_selected(self, rel_a, rel_c):
        result = tp_except(rel_a, rel_c)
        rows = rows_of(result)
        assert (("dates",), "a3", 1, 3, 0.6) in rows
        assert (("chips",), "a2∧¬c3", 4, 5, 0.24) in rows
        assert (("milk",), "a1∧¬c2", 6, 8, 0.09) in rows


class TestFig3AllOperations:
    def test_union(self, rel_a, rel_c):
        assert rows_of(tp_union(rel_a, rel_c)) == {
            (("milk",), "c1", 1, 2, 0.6),
            (("milk",), "a1∨c1", 2, 4, 0.72),
            (("milk",), "a1", 4, 6, 0.3),
            (("milk",), "a1∨c2", 6, 8, 0.79),
            (("milk",), "a1", 8, 10, 0.3),
            (("chips",), "a2∨c3", 4, 5, 0.94),
            (("chips",), "a2", 5, 7, 0.8),
            (("chips",), "c4", 7, 9, 0.8),
            (("dates",), "a3", 1, 3, 0.6),
        }

    def test_difference(self, rel_a, rel_c):
        assert rows_of(tp_except(rel_a, rel_c)) == {
            (("milk",), "a1∧¬c1", 2, 4, 0.12),
            (("milk",), "a1", 4, 6, 0.3),
            (("milk",), "a1∧¬c2", 6, 8, 0.09),
            (("milk",), "a1", 8, 10, 0.3),
            (("chips",), "a2∧¬c3", 4, 5, 0.24),
            (("chips",), "a2", 5, 7, 0.8),
            (("dates",), "a3", 1, 3, 0.6),
        }

    def test_intersection(self, rel_a, rel_c):
        assert rows_of(tp_intersect(rel_a, rel_c)) == {
            (("milk",), "a1∧c1", 2, 4, 0.18),
            (("milk",), "a1∧c2", 6, 8, 0.21),
            (("chips",), "a2∧c3", 4, 5, 0.56),
        }


class TestOperandOrder:
    """Set difference is not symmetric; union/intersection lineages keep
    operand order (syntactic comparison is order-sensitive)."""

    def test_difference_asymmetric(self, rel_a, rel_c):
        ac = rows_of(tp_except(rel_a, rel_c))
        ca = rows_of(tp_except(rel_c, rel_a))
        assert ac != ca
        assert (("milk",), "c1∧¬a1", 2, 4, 0.42) in ca

    def test_union_lineage_operand_order(self, rel_a, rel_c):
        rows = rows_of(tp_union(rel_c, rel_a))
        assert (("milk",), "c1∨a1", 2, 4, 0.72) in rows

    def test_union_commutative_up_to_lineage(self, rel_a, rel_c):
        left = {
            (fact, lo, hi, p) for (fact, _lam, lo, hi, p) in rows_of(tp_union(rel_a, rel_c))
        }
        right = {
            (fact, lo, hi, p) for (fact, _lam, lo, hi, p) in rows_of(tp_union(rel_c, rel_a))
        }
        assert left == right

    def test_intersection_commutative_up_to_lineage(self, rel_a, rel_c):
        left = {
            (fact, lo, hi, p)
            for (fact, _lam, lo, hi, p) in rows_of(tp_intersect(rel_a, rel_c))
        }
        right = {
            (fact, lo, hi, p)
            for (fact, _lam, lo, hi, p) in rows_of(tp_intersect(rel_c, rel_a))
        }
        assert left == right


class TestSchemaChecks:
    def test_arity_mismatch_rejected(self, rel_a):
        from repro import SchemaMismatchError, TPRelation

        wide = TPRelation.from_rows(
            "w", ("product", "store"), [("milk", "zurich", 1, 3, 0.5)]
        )
        with pytest.raises(SchemaMismatchError):
            tp_union(rel_a, wide)

    def test_unknown_operation(self, rel_a, rel_c):
        from repro import UnsupportedOperationError, tp_set_operation

        with pytest.raises(UnsupportedOperationError):
            tp_set_operation("xor", rel_a, rel_c)

    def test_dispatch_table(self, rel_a, rel_c):
        from repro import tp_set_operation

        assert tp_set_operation("intersect", rel_a, rel_c).equivalent_to(
            tp_intersect(rel_a, rel_c)
        )
