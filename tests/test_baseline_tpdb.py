"""Tests specific to the TPDB baseline (grounding + deduplication)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import Interval, TPRelation, UnsupportedOperationError
from repro.baselines.tpdb import ALLEN_OVERLAP_RULES, TpdbAlgorithm


def make_interval(a: int, b: int) -> Interval:
    return Interval(min(a, b), max(a, b)) if a != b else Interval(a, a + 1)


interval_strategy = st.builds(
    make_interval,
    st.integers(min_value=0, max_value=30),
    st.integers(min_value=0, max_value=30),
)


class TestGroundingRules:
    @given(interval_strategy, interval_strategy)
    def test_rules_mutually_exclusive(self, a, b):
        """Each overlapping pair must be derived by exactly one rule —
        otherwise grounding would create duplicate derivations."""
        fired = [rule for rule in ALLEN_OVERLAP_RULES if rule(a, b)]
        assert len(fired) <= 1

    @given(interval_strategy, interval_strategy)
    def test_rules_cover_exactly_the_overlaps(self, a, b):
        fired = [rule for rule in ALLEN_OVERLAP_RULES if rule(a, b)]
        assert bool(fired) == a.overlaps(b)

    def test_six_rules(self):
        assert len(ALLEN_OVERLAP_RULES) == 6


class TestTpdbBehaviour:
    def test_difference_unsupported(self, rel_a, rel_c):
        """Table II: TPDB cannot express TP set difference."""
        with pytest.raises(UnsupportedOperationError):
            TpdbAlgorithm().compute("except", rel_a, rel_c)

    def test_union_merges_overlap_lineage(self):
        r = TPRelation.from_rows("r", ("x",), [("f", 1, 6, 0.5)])
        s = TPRelation.from_rows("s", ("x",), [("f", 4, 9, 0.5)])
        result = TpdbAlgorithm().compute("union", r, s)
        rows = {(t.start, t.end, str(t.lineage)) for t in result}
        assert rows == {
            (1, 4, "r1"),
            (4, 6, "r1∨s1"),
            (6, 9, "s1"),
        }

    def test_dedup_coalesces_fragments(self):
        # A tuple fragmented by the other side's boundary inside a region
        # with identical lineage must be re-merged by deduplication.
        r = TPRelation.from_rows("r", ("x",), [("f", 1, 10, 0.5)])
        s = TPRelation.from_rows("s", ("x",), [("g", 1, 10, 0.5)])
        result = TpdbAlgorithm().compute("union", r, s)
        assert {(t.fact, t.start, t.end) for t in result} == {
            (("f",), 1, 10),
            (("g",), 1, 10),
        }

    def test_intersection_equal_intervals(self):
        r = TPRelation.from_rows("r", ("x",), [("f", 2, 6, 0.5)])
        s = TPRelation.from_rows("s", ("x",), [("f", 2, 6, 0.5)])
        result = TpdbAlgorithm().compute("intersect", r, s)
        assert {(t.start, t.end, str(t.lineage)) for t in result} == {
            (2, 6, "r1∧s1")
        }

    def test_intersection_no_common_fact(self):
        r = TPRelation.from_rows("r", ("x",), [("f", 2, 6, 0.5)])
        s = TPRelation.from_rows("s", ("x",), [("g", 2, 6, 0.5)])
        assert len(TpdbAlgorithm().compute("intersect", r, s)) == 0
