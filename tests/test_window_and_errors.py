"""Tests for the window value object, error hierarchy, and display glue."""

from __future__ import annotations

import pytest

from repro import (
    DuplicateFactError,
    Interval,
    InvalidIntervalError,
    LineageWindow,
    QueryParseError,
    SchemaMismatchError,
    TPError,
    UnknownRelationError,
    UnknownVariableError,
    UnsupportedOperationError,
    ValuationError,
)
from repro.lineage import Var


class TestLineageWindow:
    def test_interval_property(self):
        window = LineageWindow(("milk",), 2, 4, Var("c1"), Var("a1"))
        assert window.interval == Interval(2, 4)

    def test_str_with_both_lineages(self):
        window = LineageWindow(("milk",), 2, 4, Var("c1"), Var("a1"))
        assert str(window) == "('milk', [2,4), λr=c1, λs=a1)"

    def test_str_with_null_side(self):
        window = LineageWindow(("milk",), 1, 2, Var("c1"), None)
        assert "λs=null" in str(window)

    def test_frozen(self):
        window = LineageWindow(("milk",), 1, 2, None, Var("a1"))
        with pytest.raises(AttributeError):
            window.win_ts = 5  # type: ignore[misc]

    def test_hashable(self):
        w1 = LineageWindow(("milk",), 1, 2, None, Var("a1"))
        w2 = LineageWindow(("milk",), 1, 2, None, Var("a1"))
        assert len({w1, w2}) == 1


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            InvalidIntervalError,
            DuplicateFactError,
            SchemaMismatchError,
            UnknownRelationError,
            UnknownVariableError,
            UnsupportedOperationError,
            QueryParseError,
            ValuationError,
        ],
    )
    def test_all_derive_from_tp_error(self, exc):
        assert issubclass(exc, TPError)

    def test_value_errors_catchable_as_such(self):
        assert issubclass(InvalidIntervalError, ValueError)
        assert issubclass(DuplicateFactError, ValueError)
        assert issubclass(QueryParseError, ValueError)

    def test_lookup_errors_catchable_as_such(self):
        assert issubclass(UnknownRelationError, KeyError)
        assert issubclass(UnknownVariableError, KeyError)

    def test_unsupported_is_not_implemented(self):
        assert issubclass(UnsupportedOperationError, NotImplementedError)

    def test_one_handler_catches_everything(self, rel_a):
        from repro import tp_set_operation

        with pytest.raises(TPError):
            tp_set_operation("xor", rel_a, rel_a)
        with pytest.raises(TPError):
            Interval(5, 5)


class TestPackageSurface:
    def test_version(self):
        import repro

        assert repro.__version__

    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_docstring_example(self):
        """The module docstring example must stay correct."""
        import doctest

        import repro

        results = doctest.testmod(repro, verbose=False)
        assert results.failed == 0

    def test_algebra_exports(self):
        from repro import expected_count, tp_join, tp_project  # noqa: F401
