"""Plan-space metamorphic harness for the cost-based optimizer.

The optimizer's contract (DESIGN.md §11): **every** plan the enumerator
can emit is result-equivalent to the unoptimized plan —

* *safe* plans (pushdown, flattening, join reassociation) are
  **lineage-identical**: same tuples, same intervals, and the identical
  interned lineage objects, hence float-identical probabilities;
* *aggressive* plans (difference fusion, multiway reordering) may change
  the lineage *form* but preserve tuples, intervals and probabilities.

Three layers of attack:

* a fixed 4-relation query whose plan space is enumerated exhaustively
  (≥ 4 distinct plans), every plan executed and compared to the
  unoptimized plan *and* to the possible-worlds oracle;
* hypothesis property tests over random query trees
  (``tests/strategies.query_scenario``: selections, all five joins,
  n-ary set-op chains, repeated subgoals) proving the same for the whole
  enumerated space of each random tree;
* cost-model/choice sanity: the chooser is deterministic, never picks a
  plan worse than the unrewritten tree under its own model, and its
  statistics inputs agree between the lazy relation path and the
  incrementally maintained store path.
"""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import assume, given, settings

from repro import TPRelation
from repro.core.sorting import null_safe_key
from repro.query import (
    choose_plan,
    enumerate_plans,
    execute_plan,
    parse_query,
    plan_query,
    relation_stats,
)
from repro.semantics import query_marginals_via_worlds

from .strategies import query_scenario

TOL = 1e-9


def run_plan(node, catalog) -> TPRelation:
    return execute_plan(plan_query(node), catalog)


def stats_of(catalog) -> dict:
    return {name: relation_stats(rel) for name, rel in catalog.items()}


def shape(relation) -> Counter:
    """Multiset of (fact, interval) — the tuple/interval fingerprint."""
    return Counter((t.fact, t.interval) for t in relation)


def point_probabilities(relation) -> dict:
    return {
        (t.fact, point): t.p
        for t in relation
        for point in range(t.start, t.end)
    }


def assert_lineage_identical(result, reference) -> None:
    """Same tuples, same intervals, *identical* interned lineages, same
    floats — the safe-plan contract (tuple order may differ between
    plan shapes; compare in (F, Ts) order)."""
    assert len(result) == len(reference)
    left = sorted(result, key=null_safe_key)
    right = sorted(reference, key=null_safe_key)
    for mine, theirs in zip(left, right):
        assert mine.fact == theirs.fact
        assert mine.interval == theirs.interval
        assert mine.lineage is theirs.lineage, (
            f"lineage diverged: {mine.lineage} vs {theirs.lineage}"
        )
        assert mine.p == theirs.p


def assert_probability_identical(result, reference, tol: float = TOL) -> None:
    """Same tuples and intervals; probabilities equal within ``tol`` —
    the aggressive-plan contract (lineage form may differ)."""
    assert shape(result) == shape(reference)
    mine = point_probabilities(result)
    theirs = point_probabilities(reference)
    assert mine.keys() == theirs.keys()
    for key, p in mine.items():
        assert p == pytest.approx(theirs[key], abs=tol), key


def assert_matches_oracle(result, query, catalog, tol: float = TOL) -> None:
    oracle = query_marginals_via_worlds(query, catalog)
    computed = point_probabilities(result)
    for key in set(oracle) | set(computed):
        got = computed.get(key, 0.0)
        expected = oracle.get(key, 0.0)
        assert got == pytest.approx(expected, abs=tol), key


# ----------------------------------------------------------------------
# exhaustive enumeration over a fixed 4-relation query
# ----------------------------------------------------------------------
class TestFourRelationPlanSpace:
    QUERY = "((r1 | r2) | r3)[x='f'] - r4"

    @pytest.fixture
    def catalog(self):
        return {
            "r1": TPRelation.from_rows(
                "r1", ("x",), [("f", 0, 6, 0.5), ("g", 1, 4, 0.3)]
            ),
            "r2": TPRelation.from_rows("r2", ("x",), [("f", 2, 8, 0.4)]),
            "r3": TPRelation.from_rows(
                "r3", ("x",), [("f", 5, 9, 0.6), ("g", 2, 3, 0.9)]
            ),
            "r4": TPRelation.from_rows("r4", ("x",), [("f", 0, 2, 0.2)]),
        }

    def test_enumerates_at_least_four_distinct_plans(self, catalog):
        plans = enumerate_plans(parse_query(self.QUERY), stats=stats_of(catalog))
        assert len(plans) >= 4
        assert len(set(map(str, plans))) == len(plans)

    def test_every_safe_plan_lineage_identical_and_oracle_exact(self, catalog):
        query = parse_query(self.QUERY)
        plans = enumerate_plans(query, stats=stats_of(catalog))
        reference = run_plan(plans[0], catalog)  # the unoptimized shape
        assert_matches_oracle(reference, query, catalog)
        for plan in plans[1:]:
            result = run_plan(plan, catalog)
            assert_lineage_identical(result, reference)
            assert_matches_oracle(result, query, catalog)

    def test_every_aggressive_plan_probability_identical(self, catalog):
        query = parse_query("r1 - r2 - r3 - r4")
        plans = enumerate_plans(
            query, stats=stats_of(catalog), aggressive=True
        )
        fused = [p for p in plans if "∪" in str(p)]
        assert fused, "difference fusion must appear in the aggressive space"
        reference = run_plan(plans[0], catalog)
        assert_matches_oracle(reference, query, catalog)
        for plan in plans[1:]:
            result = run_plan(plan, catalog)
            assert_probability_identical(result, reference)
            assert_matches_oracle(result, query, catalog)

    def test_join_chain_reassociations_all_identical(self):
        catalog = {
            "j1": TPRelation.from_rows(
                "j1", ("k", "a"),
                [("k1", "a1", 0, 6, 0.5), ("k2", "a1", 1, 4, 0.3)],
            ),
            "j2": TPRelation.from_rows(
                "j2", ("k", "b"), [("k1", "b1", 2, 8, 0.4), ("k2", "b2", 0, 3, 0.9)]
            ),
            "j3": TPRelation.from_rows("j3", ("b", "c"), [("b1", "c1", 1, 9, 0.6)]),
            "j4": TPRelation.from_rows("j4", ("c", "d"), [("c1", "d1", 0, 7, 0.8)]),
        }
        query = parse_query("j1 JOIN j2 JOIN j3 JOIN j4")
        plans = enumerate_plans(query, stats=stats_of(catalog))
        assert len(plans) >= 4  # the association shapes of a 4-chain
        reference = run_plan(plans[0], catalog)
        assert_matches_oracle(reference, query, catalog)
        for plan in plans[1:]:
            assert_lineage_identical(run_plan(plan, catalog), reference)

    def test_chooser_is_deterministic_and_never_worse(self, catalog):
        query = parse_query(self.QUERY)
        stats = stats_of(catalog)
        first = choose_plan(query, stats)
        again = choose_plan(query, stats)
        assert first.chosen == again.chosen
        unrewritten_cost = first.candidates[0][1].cost
        assert first.estimate.cost <= unrewritten_cost
        assert first.chosen_index == min(
            range(first.n_candidates),
            key=lambda i: (first.candidates[i][1].cost, i),
        )


# ----------------------------------------------------------------------
# random query trees: the whole enumerated space, per tree
# ----------------------------------------------------------------------
class TestMetamorphicRandomTrees:
    @settings(max_examples=30, deadline=None)
    @given(scenario=query_scenario())
    def test_safe_plans_lineage_identical(self, scenario):
        catalog, query = scenario
        plans = enumerate_plans(query, stats=stats_of(catalog), limit=16)
        reference = run_plan(plans[0], catalog)
        for plan in plans[1:]:
            assert_lineage_identical(run_plan(plan, catalog), reference)

    @settings(max_examples=20, deadline=None)
    @given(scenario=query_scenario(max_depth=2))
    def test_aggressive_plans_probability_identical(self, scenario):
        catalog, query = scenario
        plans = enumerate_plans(
            query, stats=stats_of(catalog), aggressive=True, limit=16
        )
        reference = run_plan(plans[0], catalog)
        for plan in plans[1:]:
            assert_probability_identical(run_plan(plan, catalog), reference)

    @settings(max_examples=15, deadline=None)
    @given(scenario=query_scenario(max_relations=3, max_depth=2, max_intervals=1))
    def test_all_plans_match_possible_worlds_oracle(self, scenario):
        catalog, query = scenario
        total_events = sum(len(rel) for rel in catalog.values())
        assume(0 < total_events <= 10)  # 2¹⁰ worlds stays fast
        plans = enumerate_plans(
            query, stats=stats_of(catalog), aggressive=True, limit=8
        )
        for plan in plans:
            assert_matches_oracle(run_plan(plan, catalog), query, catalog)

    @settings(max_examples=20, deadline=None)
    @given(scenario=query_scenario(max_depth=2))
    def test_chosen_plan_equivalent_to_unoptimized(self, scenario):
        catalog, query = scenario
        stats = stats_of(catalog)
        choice = choose_plan(query, stats)
        assert_lineage_identical(
            run_plan(choice.chosen, catalog), run_plan(query, catalog)
        )


# ----------------------------------------------------------------------
# statistics: lazy relation path ≡ incremental store path
# ----------------------------------------------------------------------
class TestStatisticsConsistency:
    def test_incremental_store_stats_match_scratch_recompute(self):
        from repro.query.stats import stats_from_tuples
        from repro.store import SegmentStore, StoreStatistics

        store = SegmentStore("r", ("k", "a"))
        store.insert(
            [("k1", "a1", 0, 4, 0.5), ("k2", "a2", 2, 6, 0.7), ("k1", "a2", 5, 9, 0.4)]
        )
        maintainer = StoreStatistics(store)

        def assert_consistent():
            incremental = maintainer.current()
            scratch = stats_from_tuples("r", ("k", "a"), store.iter_sorted())
            assert incremental.n_tuples == scratch.n_tuples
            assert incremental.n_facts == scratch.n_facts
            assert incremental.distinct == scratch.distinct
            assert incremental.span == scratch.span
            assert incremental.covered == scratch.covered

        assert_consistent()
        store.apply(
            inserts=[("k3", "a1", 1, 3, 0.9)], deletes=[("k2", "a2", 2, 6)]
        )
        assert_consistent()
        store.delete([("k1", "a2", 5, 9)])  # boundary delete → span shrinks
        assert_consistent()
        store.insert([("k1", "a2", 20, 25, 0.3)])  # far outside: re-spread
        assert_consistent()
        store.delete_where(lambda t: True)  # wipe
        assert maintainer.current().n_tuples == 0
        assert maintainer.current().span is None
