"""Serving-cache correctness: key composition, LRU mechanics, sweeping.

The regression that must never ship (DESIGN.md §14.3): a *near-miss*
key — same query text, different optimize level, worker count or epoch
— aliasing a cached result.  The key is (canonical form, level,
workers, epoch signature); these tests pin each component's presence by
driving real queries through :class:`repro.serve.QueryService`.
"""

from __future__ import annotations

import pytest

from repro.db import TPDatabase
from repro.serve import LRUCache, QueryService


def _db() -> TPDatabase:
    db = TPDatabase()
    db.create_relation(
        "a", ("product",), [("milk", 2, 10, 0.3), ("chips", 4, 7, 0.8)]
    )
    db.create_relation("b", ("product",), [("milk", 5, 12, 0.5)])
    return db


# ----------------------------------------------------------------------
# the LRU building block
# ----------------------------------------------------------------------
def test_lru_eviction_order_and_counters():
    cache = LRUCache(2)
    cache.put("x", 1)
    cache.put("y", 2)
    assert cache.get("x") == 1  # refreshes x: y is now the LRU tail
    cache.put("z", 3)
    assert cache.get("y") is None
    assert cache.get("x") == 1 and cache.get("z") == 3
    stats = cache.stats()
    assert stats["evictions"] == 1
    assert stats["hits"] == 3 and stats["misses"] == 1


def test_lru_capacity_zero_disables_caching():
    cache = LRUCache(0)
    cache.put("x", 1)
    assert cache.get("x") is None
    with pytest.raises(ValueError):
        LRUCache(-1)


def test_lru_sweep_does_not_count_as_eviction():
    cache = LRUCache(8)
    for index in range(4):
        cache.put(index, index)
    assert cache.sweep(lambda key: key % 2 == 0) == 2
    assert cache.stats()["entries"] == 2
    assert cache.stats()["evictions"] == 0


# ----------------------------------------------------------------------
# result-cache key composition (the near-miss regression)
# ----------------------------------------------------------------------
def test_same_query_different_optimize_level_never_aliases():
    service = QueryService(_db())
    session = service.open_session()
    first = service.execute(session, "a | b", optimize="safe")
    assert first.cached is False
    near_miss = service.execute(session, "a | b", optimize="off")
    assert near_miss.cached is False, (
        "a different optimize level aliased the cached result"
    )
    aggressive = service.execute(session, "a | b", optimize="aggressive")
    assert aggressive.cached is False
    # The exact key (query, level, epoch) does hit.
    assert service.execute(session, "a | b", optimize="safe").cached is True
    assert service.execute(session, "a | b", optimize="off").cached is True


def test_canonically_equal_queries_share_one_entry():
    service = QueryService(_db())
    session = service.open_session()
    service.execute(session, "(a | b) | a", optimize="safe")
    reassociated = service.execute(session, "a | (b | a)", optimize="safe")
    assert reassociated.cached is True, (
        "canonically equal queries must share a cache entry"
    )


def test_commit_changes_the_epoch_key_and_misses():
    service = QueryService(_db())
    session = service.open_session()
    before = service.execute(session, "a | b", optimize="safe")
    service.commit(session, "a", inserts=[("beer", 3, 8, 0.5)])
    after = service.execute(session, "a | b", optimize="safe")
    assert after.cached is False
    assert after.epoch_key != before.epoch_key
    facts = {t.fact[0] for t in after.relation}
    assert "beer" in facts


def test_commit_to_unreferenced_store_keeps_the_entry_hot():
    db = _db()
    service = QueryService(db)
    session = service.open_session()
    db.store("b")  # make b mutable so its epoch can move
    service.execute(session, "a | a", optimize="safe")
    service.commit(session, "b", inserts=[("beer", 3, 8, 0.5)])
    assert service.execute(session, "a | a", optimize="safe").cached is True, (
        "a commit to an unreferenced relation must not invalidate the entry"
    )


def test_sweep_retires_epochs_no_session_pins():
    service = QueryService(_db())
    reader = service.open_session()
    writer = service.open_session()
    service.execute(reader, "a | b", optimize="safe")
    service.commit(writer, "a", inserts=[("beer", 3, 8, 0.5)])
    service.execute(writer, "a | b", optimize="safe")
    assert service.results.stats()["entries"] == 2  # old epoch still pinned
    service.close_session(reader)
    assert service.results.stats()["entries"] == 1, (
        "closing the pinning session must retire the historical entry"
    )


def test_cache_size_zero_service_still_correct():
    service = QueryService(_db(), cache_size=0)
    session = service.open_session()
    first = service.execute(session, "a | b", optimize="safe")
    second = service.execute(session, "a | b", optimize="safe")
    assert second.cached is False
    rows = lambda r: [  # noqa: E731 - tiny local canonicalizer
        (t.fact, t.start, t.end, str(t.lineage), t.p) for t in r
    ]
    assert rows(first.relation) == rows(second.relation)
