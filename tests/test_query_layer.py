"""Tests for the query layer: parser, analysis, planner, executor."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro import QueryParseError, UnknownRelationError, UnsupportedOperationError
from repro.query import (
    RelationRef,
    SetOpNode,
    analyze,
    execute_plan,
    is_non_repeating,
    parse_query,
    plan_query,
    relation_references,
)
from repro.query import infer_schema, strip_explain_prefix
from repro.query.planner import ScanPlan, SetOpPlan

from .strategies import query_scenario


class TestParser:
    def test_keywords(self):
        ast = parse_query("c EXCEPT (a UNION b)")
        assert ast == SetOpNode(
            "except",
            RelationRef("c"),
            SetOpNode("union", RelationRef("a"), RelationRef("b")),
        )

    def test_symbols(self):
        assert parse_query("c − (a ∪ b)") == parse_query("c EXCEPT (a UNION b)")
        assert parse_query("c - (a | b)") == parse_query("c EXCEPT (a UNION b)")
        assert parse_query("a ∩ b") == parse_query("a INTERSECT b")
        assert parse_query("a & b") == parse_query("a intersect b")

    def test_intersect_binds_tighter(self):
        ast = parse_query("a union b intersect c")
        assert ast == SetOpNode(
            "union",
            RelationRef("a"),
            SetOpNode("intersect", RelationRef("b"), RelationRef("c")),
        )

    def test_left_associative_union_except(self):
        ast = parse_query("a union b except c")
        assert ast == SetOpNode(
            "except",
            SetOpNode("union", RelationRef("a"), RelationRef("b")),
            RelationRef("c"),
        )

    def test_single_relation(self):
        assert parse_query("products") == RelationRef("products")

    def test_dotted_names(self):
        assert parse_query("db.products") == RelationRef("db.products")

    @pytest.mark.parametrize(
        "text", ["", "a union", "union a", "(a", "a)", "a ? b", "a b"]
    )
    def test_rejects_bad_syntax(self, text):
        with pytest.raises(QueryParseError):
            parse_query(text)

    def test_str_round_trip(self):
        ast = parse_query("c - (a | b)")
        assert parse_query(str(ast)) == ast


class TestAnalysis:
    def test_non_repeating(self):
        assert is_non_repeating(parse_query("c - (a | b)"))
        assert not is_non_repeating(parse_query("(r1 | r2) - (r1 & r3)"))

    def test_relation_references_with_multiplicity(self):
        ast = parse_query("(r1 | r2) - (r1 & r3)")
        assert relation_references(ast) == ["r1", "r2", "r1", "r3"]

    def test_analysis_ptime(self):
        report = analyze(parse_query("c - (a | b)"))
        assert report.non_repeating
        assert report.repeated_relations == ()
        assert "PTIME" in report.complexity
        assert report.operation_count == 2
        assert report.operations == {"except": 1, "union": 1}
        assert report.depth == 2

    def test_analysis_hard(self):
        # The paper's own #P-hard example: (r1 ∪ r2) − (r1 ∩ r3).
        report = analyze(parse_query("(r1 | r2) - (r1 & r3)"))
        assert not report.non_repeating
        assert report.repeated_relations == ("r1",)
        assert "#P-hard" in report.complexity

    def test_describe(self):
        text = analyze(parse_query("c - (a | b)")).describe()
        assert "relations: c, a, b" in text
        assert "complexity" in text

    def test_single_relation_analysis(self):
        report = analyze(parse_query("a"))
        assert report.operation_count == 0
        assert report.depth == 0


class TestPlanner:
    def test_default_lawa(self):
        plan = plan_query(parse_query("a - b"))
        assert isinstance(plan, SetOpPlan)
        assert plan.algorithm.name == "LAWA"
        assert plan.left == ScanPlan("a")

    def test_algorithm_by_name(self):
        plan = plan_query(parse_query("a & b"), algorithm="TI")
        assert plan.algorithm.name == "TI"

    def test_capability_enforced_at_plan_time(self):
        with pytest.raises(UnsupportedOperationError):
            plan_query(parse_query("a - b"), algorithm="TPDB")

    def test_per_op_overrides(self):
        plan = plan_query(
            parse_query("(a & b) - c"), per_op_algorithms={"intersect": "OIP"}
        )
        assert plan.algorithm.name == "LAWA"
        assert plan.left.algorithm.name == "OIP"

    def test_describe_tree(self):
        text = plan_query(parse_query("c - (a | b)")).describe()
        assert "Except[LAWA]" in text
        assert "Scan[c]" in text


class TestExecutor:
    def test_paper_query(self, rel_a, rel_b, rel_c):
        plan = plan_query(parse_query("c - (a | b)"))
        catalog = {"a": rel_a, "b": rel_b, "c": rel_c}
        result = execute_plan(plan, catalog)
        rows = {(t.fact, str(t.lineage), t.start, t.end, round(t.p, 6)) for t in result}
        assert (("milk",), "c2∧¬(a1∨b1)", 6, 8, 0.196) in rows
        assert len(rows) == 5

    def test_unknown_relation(self, rel_a):
        plan = plan_query(parse_query("a | ghost"))
        with pytest.raises(UnknownRelationError):
            execute_plan(plan, {"a": rel_a})

    def test_intermediates_not_materialized(self, rel_a, rel_b, rel_c):
        """Only the root result carries probabilities."""
        plan = plan_query(parse_query("c - (a | b)"))
        catalog = {"a": rel_a, "b": rel_b, "c": rel_c}
        deferred = execute_plan(plan, catalog, materialize=False)
        assert all(t.p is None for t in deferred)

    def test_scan_only_plan(self, rel_a):
        result = execute_plan(plan_query(parse_query("a")), {"a": rel_a})
        assert result.equivalent_to(rel_a)


class TestRandomTreesPlanAndExecute:
    """The shared query-tree strategy drives the classic layer too:
    every generated tree must analyze, infer a schema, plan and execute
    (the metamorphic harness builds on exactly this contract)."""

    @settings(max_examples=25, deadline=None)
    @given(scenario=query_scenario(max_depth=2))
    def test_generated_trees_plan_and_execute(self, scenario):
        catalog, query = scenario
        analysis = analyze(query)
        assert set(analysis.relations) <= set(catalog)
        schema = infer_schema(query, {n: r.schema for n, r in catalog.items()})
        assert schema is not None
        result = execute_plan(plan_query(query), catalog)
        assert result.schema.attributes == schema.attributes
        for t in result:
            assert t.p is None or 0.0 <= t.p <= 1.0 + 1e-12

    @settings(max_examples=25, deadline=None)
    @given(scenario=query_scenario(max_depth=2, joins=False))
    def test_explain_prefix_round_trip(self, scenario):
        """EXPLAIN <query> is recognized exactly when a query follows."""
        _, query = scenario
        text = str(query)
        assert strip_explain_prefix(f"EXPLAIN {text}") == text
        assert strip_explain_prefix(f"  explain {text}") == text
        assert strip_explain_prefix(text) is None
