"""Tests for the exact probability valuations (1OF, Shannon, BDD).

Ground truth is brute-force enumeration over all truth assignments, so
every exact method is checked against the same oracle, and the paper's
worked probabilities (Fig. 1c, Fig. 3) are pinned explicitly.
"""

from __future__ import annotations

from itertools import product as cartesian

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import (
    UnknownVariableError,
    ValuationError,
    probability_1of,
    probability_bdd,
    probability_shannon,
)
from repro.lineage import Var, evaluate, land, lnot, lor, variables
from repro.prob import BddManager, equivalent

a, b, c, d = Var("a"), Var("b"), Var("c"), Var("d")


def brute_force(formula, probs):
    names = sorted(variables(formula))
    total = 0.0
    for bits in cartesian((False, True), repeat=len(names)):
        env = dict(zip(names, bits))
        if evaluate(formula, env):
            weight = 1.0
            for name, bit in env.items():
                weight *= probs[name] if bit else 1.0 - probs[name]
            total += weight
    return total


@st.composite
def formulas(draw, depth: int = 3):
    pool = st.sampled_from([a, b, c, d])
    if depth == 0:
        return draw(pool)
    kind = draw(st.integers(0, 3))
    if kind == 0:
        return draw(pool)
    if kind == 1:
        return lnot(draw(formulas(depth=depth - 1)))
    left = draw(formulas(depth=depth - 1))
    right = draw(formulas(depth=depth - 1))
    return land(left, right) if kind == 2 else lor(left, right)


probs_strategy = st.fixed_dictionaries(
    {
        name: st.floats(min_value=0.01, max_value=0.99, allow_nan=False)
        for name in ("a", "b", "c", "d")
    }
)


class TestPaperValues:
    """The marginal probabilities the paper reports for Fig. 1/3."""

    def test_fig1_c1_and_not_a1(self):
        formula = Var("c1") & ~Var("a1")
        assert probability_1of(formula, {"c1": 0.6, "a1": 0.3}) == pytest.approx(0.42)

    def test_fig1_c2_and_not_a1_or_b1(self):
        formula = Var("c2") & ~(Var("a1") | Var("b1"))
        p = probability_1of(formula, {"c2": 0.7, "a1": 0.3, "b1": 0.6})
        assert p == pytest.approx(0.196)

    def test_fig1_c3_and_not_a2_or_b2(self):
        formula = Var("c3") & ~(Var("a2") | Var("b2"))
        p = probability_1of(formula, {"c3": 0.7, "a2": 0.8, "b2": 0.9})
        assert p == pytest.approx(0.014)

    def test_fig3_union(self):
        formula = Var("a1") | Var("c1")
        assert probability_1of(formula, {"a1": 0.3, "c1": 0.6}) == pytest.approx(0.72)

    def test_fig3_intersection(self):
        formula = Var("a2") & Var("c3")
        assert probability_1of(formula, {"a2": 0.8, "c3": 0.7}) == pytest.approx(0.56)


class TestOneOccurrence:
    def test_rejects_non_1of(self):
        with pytest.raises(ValuationError):
            probability_1of(a & ~a, {"a": 0.5})

    def test_unknown_variable(self):
        with pytest.raises(UnknownVariableError):
            probability_1of(a & b, {"a": 0.5})

    @given(formulas(), probs_strategy)
    def test_matches_brute_force_when_1of(self, formula, probs):
        from repro.lineage import is_one_occurrence_form

        if is_one_occurrence_form(formula):
            assert probability_1of(formula, probs) == pytest.approx(
                brute_force(formula, probs)
            )


class TestShannon:
    @given(formulas(), probs_strategy)
    def test_matches_brute_force(self, formula, probs):
        assert probability_shannon(formula, probs) == pytest.approx(
            brute_force(formula, probs)
        )

    def test_repeated_variable_exact(self):
        # P(a ∨ (a ∧ b)) = P(a), the absorption the 1OF path would get wrong.
        formula = a | (a & b)
        assert probability_shannon(formula, {"a": 0.3, "b": 0.9}) == pytest.approx(0.3)

    def test_contradiction(self):
        assert probability_shannon(a & ~a, {"a": 0.7}) == pytest.approx(0.0)

    def test_tautology(self):
        assert probability_shannon(a | ~a, {"a": 0.7}) == pytest.approx(1.0)


class TestBdd:
    @given(formulas(), probs_strategy)
    def test_matches_brute_force(self, formula, probs):
        assert probability_bdd(formula, probs) == pytest.approx(
            brute_force(formula, probs)
        )

    @given(formulas(), formulas())
    def test_equivalence_decision(self, f, g):
        """BDD equivalence agrees with truth-table equivalence."""
        names = sorted(variables(f) | variables(g))
        truth_equal = all(
            evaluate(f, dict(zip(names, bits))) == evaluate(g, dict(zip(names, bits)))
            for bits in cartesian((False, True), repeat=len(names))
        )
        assert equivalent(f, g) == truth_equal

    def test_canonical_roots_shared(self):
        manager = BddManager()
        root1 = manager.build((a & b) | (a & c))
        root2 = manager.build(a & (b | c))
        assert root1 is root2

    def test_node_count_reduced(self):
        manager = BddManager(order=["a", "b"])
        root = manager.build((a & b) | (a & ~b))  # reduces to just `a`
        assert manager.node_count(root) == 1
