"""Wire-level stress: many concurrent clients vs. a serial oracle.

The serving tentpole's acceptance bar (DESIGN.md §14): with reader
connections opening at staggered points of a ``delta_storm`` commit
stream, every wire response — the full relation payload, lineage text
and probabilities included — must be bit-identical to a serial oracle
that replays exactly that reader's pinned prefix into a fresh database.
The remaining tests pin the protocol edges (errors keep the connection
alive, ids echo, oversized lines are refused, the request timeout
budget fires) and the SIGTERM path end-to-end via the smoke harness.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import replace

import pytest

from repro.bench.workloads import build_scenario, scenario_catalog
from repro.db import TPDatabase
from repro.serve.protocol import MAX_LINE_BYTES, relation_payload
from repro.serve.server import ServeServer

#: delta_storm, shrunk to test size: enough batches for a real epoch
#: history, small enough that the serial oracle replays stay cheap.
_SPEC = replace(
    scenario_catalog()["delta_storm"],
    n_tuples=120,
    n_facts=8,
    n_batches=5,
    batch_fraction=0.05,
)


class _Client:
    """A minimal NDJSON client over an asyncio stream pair."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self.reader = reader
        self.writer = writer
        self.hello: dict = {}

    @classmethod
    async def connect(cls, port: int) -> "_Client":
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        client = cls(reader, writer)
        client.hello = json.loads(await reader.readline())
        assert client.hello["ok"] and client.hello["hello"]
        return client

    async def request(self, **payload) -> dict:
        self.writer.write(json.dumps(payload).encode() + b"\n")
        await self.writer.drain()
        line = await self.reader.readline()
        assert line, "server closed the connection mid-request"
        return json.loads(line)

    async def close(self) -> None:
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


def _build_db(scenario) -> TPDatabase:
    db = TPDatabase()
    for relation in scenario.relations.values():
        db.register(relation)
    for name in scenario.relations:
        db.store(name)
    return db


def _oracle_payload(scenario, upto: int, query: str) -> dict:
    """Serial replay → the exact wire payload the server must produce."""
    db = _build_db(scenario)
    for target, delta in scenario.deltas[:upto]:
        db.apply(target, inserts=delta.inserts, deletes=delta.deletes)
    payload = relation_payload(db.query(query, optimize="safe"))
    return json.loads(json.dumps(payload))  # same float/list shapes as the wire


@pytest.mark.parametrize("seed", [7, 345])
def test_many_clients_bit_identical_to_serial_oracle(seed):
    scenario = build_scenario(_SPEC, scale=1.0, seed=seed)
    queries = scenario.queries + ("r1 | r2",)
    oracle: dict[tuple[int, str], dict] = {}

    def expected(upto: int, query: str) -> dict:
        key = (upto, query)
        if key not in oracle:
            oracle[key] = _oracle_payload(scenario, upto, query)
        return oracle[key]

    async def main() -> None:
        server = ServeServer(_build_db(scenario))
        _, port = await server.start()
        try:
            writer = await _Client.connect(port)
            readers = [(await _Client.connect(port), 0) for _ in range(2)]

            async def check(client: _Client, upto: int, query: str) -> None:
                response = await client.request(op="query", q=query, optimize="safe")
                assert response["ok"], response
                assert response["relation"] == expected(upto, query), (
                    f"reader pinned after batch {upto} diverged on {query!r}"
                )

            for index, (target, delta) in enumerate(scenario.deltas):
                response = await writer.request(
                    op="commit",
                    relation=target,
                    inserts=[list(row) for row in delta.inserts],
                    deletes=[list(row) for row in delta.deletes],
                )
                assert response["ok"], response
                # A fresh reader pins the post-commit epoch...
                readers.append((await _Client.connect(port), index + 1))
                # ...and every open reader answers from its own, concurrently.
                await asyncio.gather(
                    *(check(client, upto, queries[0]) for client, upto in readers)
                )

            # End-to-end: all readers x all queries, plus the writer's own
            # view.  Concurrency is across clients; each connection is one
            # conversation, so its own requests stay sequential.
            async def sweep(client: _Client, upto: int) -> None:
                for query in queries:
                    await check(client, upto, query)

            await asyncio.gather(*(sweep(client, upto) for client, upto in readers))
            await check(writer, len(scenario.deltas), queries[0])

            # The hot-query path is observable: repeated reads hit the cache.
            stats = await writer.request(op="stats")
            assert stats["stats"]["results"]["hits"] > 0
            for client, _ in readers:
                await client.close()
            await writer.close()
        finally:
            await server.aclose()

    asyncio.run(main())


def test_protocol_errors_keep_the_connection_alive():
    db = TPDatabase()
    db.create_relation("a", ("product",), [("milk", 2, 10, 0.3)])

    async def main() -> None:
        server = ServeServer(db)
        _, port = await server.start()
        try:
            client = await _Client.connect(port)
            # Malformed JSON line.
            client.writer.write(b"this is not json\n")
            await client.writer.drain()
            response = json.loads(await client.reader.readline())
            assert response["ok"] is False
            assert response["error"]["type"] == "ProtocolError"
            # Unknown op.
            response = await client.request(op="launch")
            assert response["ok"] is False
            # Unknown relation: a clean engine error, not a hang or close.
            response = await client.request(op="query", q="nope | nope")
            assert response["ok"] is False
            assert "nope" in response["error"]["message"]
            # The connection survived all three.
            response = await client.request(op="ping", id=42)
            assert response["ok"] and response["pong"] and response["id"] == 42
            # An explicit close op ends the conversation.
            response = await client.request(op="close")
            assert response["ok"] and response["closing"]
            assert await client.reader.readline() == b""
            await client.close()
        finally:
            await server.aclose()

    asyncio.run(main())


def test_request_timeout_budget_fires_and_recovers():
    db = TPDatabase()
    db.create_relation("a", ("product",), [("milk", 2, 10, 0.3)])

    async def main() -> None:
        server = ServeServer(db)
        _, port = await server.start()
        try:
            client = await _Client.connect(port)
            original = server.service.execute

            def slow_execute(*args, **kwargs):
                time.sleep(0.3)
                return original(*args, **kwargs)

            server.service.execute = slow_execute  # type: ignore[method-assign]
            server.request_timeout = 0.05
            response = await client.request(op="query", q="a | a")
            assert response["ok"] is False
            assert response["error"]["type"] == "TimeoutError"
            # Restore the budget: the same connection serves again.
            server.service.execute = original  # type: ignore[method-assign]
            server.request_timeout = 30.0
            response = await client.request(op="query", q="a | a")
            assert response["ok"] is True
            await client.close()
        finally:
            await server.aclose()

    asyncio.run(main())


def test_oversized_request_line_is_refused():
    db = TPDatabase()

    async def main() -> None:
        server = ServeServer(db)
        _, port = await server.start()
        try:
            client = await _Client.connect(port)
            client.writer.write(b"x" * (MAX_LINE_BYTES + 1024) + b"\n")
            await client.writer.drain()
            response = json.loads(await client.reader.readline())
            assert response["ok"] is False
            assert "too long" in response["error"]["message"]
            assert await client.reader.readline() == b""  # connection closed
            await client.close()
        finally:
            await server.aclose()

    asyncio.run(main())


def test_sigterm_smoke_leaves_a_recoverable_data_dir():
    """Full subprocess round trip: serve, exercise, SIGTERM, recover."""
    from repro.serve import smoke

    assert smoke.main([]) == 0
