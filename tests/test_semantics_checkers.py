"""Tests for the property checkers themselves: they must catch violations."""

from __future__ import annotations

from repro import Interval, TPRelation, TPSchema, tp_intersect
from repro.core.tuple import TPTuple
from repro.lineage import Var, land
from repro.semantics import (
    check_change_preservation,
    check_duplicate_free,
    check_snapshot_reducibility,
)


def _relation(tuples, events):
    return TPRelation("t", TPSchema(("x",)), tuples, events, validate=False)


class TestSnapshotReducibilityChecker:
    def test_accepts_correct_result(self, rel_a, rel_c):
        result = tp_intersect(rel_a, rel_c)
        assert check_snapshot_reducibility("intersect", rel_a, rel_c, result) == []

    def test_flags_wrong_lineage(self, rel_a, rel_c):
        correct = tp_intersect(rel_a, rel_c)
        corrupted = _relation(
            [
                TPTuple(t.fact, land(t.lineage, Var("ghost")), t.interval, t.p)
                for t in correct
            ],
            {**correct.events, "ghost": 0.5},
        )
        assert check_snapshot_reducibility("intersect", rel_a, rel_c, corrupted)

    def test_flags_missing_tuple(self, rel_a, rel_c):
        correct = tp_intersect(rel_a, rel_c)
        truncated = _relation(list(correct.tuples)[:-1], correct.events)
        assert check_snapshot_reducibility("intersect", rel_a, rel_c, truncated)

    def test_flags_extra_interval(self, rel_a, rel_c):
        correct = tp_intersect(rel_a, rel_c)
        extra = list(correct.tuples) + [
            TPTuple(("milk",), Var("a1"), Interval(90, 95), 0.3)
        ]
        assert check_snapshot_reducibility(
            "intersect", rel_a, rel_c, _relation(extra, correct.events)
        )


class TestChangePreservationChecker:
    def test_flags_fragmented_output(self):
        v = Var("r1")
        fragmented = _relation(
            [
                TPTuple(("f",), v, Interval(1, 3), 0.5),
                TPTuple(("f",), v, Interval(3, 6), 0.5),
            ],
            {"r1": 0.5},
        )
        assert check_change_preservation(fragmented)

    def test_accepts_maximal_intervals(self):
        fragments = _relation(
            [
                TPTuple(("f",), Var("r1"), Interval(1, 3), 0.5),
                TPTuple(("f",), Var("r2"), Interval(3, 6), 0.5),
            ],
            {"r1": 0.5, "r2": 0.5},
        )
        assert check_change_preservation(fragments) == []


class TestDuplicateFreeChecker:
    def test_flags_overlap(self):
        overlapping = _relation(
            [
                TPTuple(("f",), Var("r1"), Interval(1, 5), 0.5),
                TPTuple(("f",), Var("r2"), Interval(4, 8), 0.5),
            ],
            {"r1": 0.5, "r2": 0.5},
        )
        assert check_duplicate_free(overlapping)

    def test_accepts_disjoint(self, rel_c):
        assert check_duplicate_free(rel_c) == []
