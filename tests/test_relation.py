"""Tests for TPRelation: construction, invariants, algebra helpers."""

from __future__ import annotations

import pytest

from repro import (
    DuplicateFactError,
    Interval,
    TPRelation,
    TPSchema,
    UnknownVariableError,
    base_tuple,
)
from repro.core.schema import make_fact
from repro.core.tuple import TPTuple
from repro.lineage import Var


class TestFromRows:
    def test_ids_and_events(self, rel_a):
        ids = [str(t.lineage) for t in rel_a]
        assert ids == ["a1", "a2", "a3"]
        assert rel_a.events == {"a1": 0.3, "a2": 0.8, "a3": 0.6}

    def test_row_arity_checked(self):
        with pytest.raises(ValueError, match="fields"):
            TPRelation.from_rows("r", ("x", "y"), [("only-one", 1, 2, 0.5)])

    def test_id_prefix(self):
        r = TPRelation.from_rows(
            "weird name", ("x",), [("v", 1, 2, 0.5)], id_prefix="w"
        )
        assert str(next(iter(r)).lineage) == "w1"

    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            TPRelation.from_rows("r", ("x",), [("v", 1, 2, 0.0)])
        with pytest.raises(ValueError):
            TPRelation.from_rows("r", ("x",), [("v", 1, 2, 1.5)])


class TestDuplicateFreeness:
    def test_overlap_same_fact_rejected(self):
        with pytest.raises(DuplicateFactError):
            TPRelation.from_rows(
                "r", ("x",), [("v", 1, 5, 0.5), ("v", 4, 8, 0.5)]
            )

    def test_adjacent_same_fact_allowed(self):
        r = TPRelation.from_rows("r", ("x",), [("v", 1, 5, 0.5), ("v", 5, 8, 0.5)])
        assert len(r) == 2

    def test_overlap_different_facts_allowed(self):
        r = TPRelation.from_rows("r", ("x",), [("v", 1, 5, 0.5), ("w", 1, 5, 0.5)])
        assert len(r) == 2

    def test_validation_can_be_skipped(self):
        schema = TPSchema(("x",))
        t1 = base_tuple(("v",), "r1", Interval(1, 5), 0.5)
        t2 = base_tuple(("v",), "r2", Interval(4, 8), 0.5)
        r = TPRelation("r", schema, [t1, t2], {"r1": 0.5, "r2": 0.5}, validate=False)
        assert len(r) == 2


class TestEventValidation:
    def test_unknown_event_rejected(self):
        schema = TPSchema(("x",))
        t = TPTuple(("v",), Var("ghost"), Interval(1, 2))
        with pytest.raises(UnknownVariableError):
            TPRelation("r", schema, [t], {})

    def test_fact_arity_checked(self):
        schema = TPSchema(("x", "y"))
        t = base_tuple(("only-one",), "r1", Interval(1, 2), 0.5)
        with pytest.raises(ValueError, match="arity"):
            TPRelation("r", schema, [t], {"r1": 0.5})


class TestAccessors:
    def test_len_iter_bool(self, rel_a):
        assert len(rel_a) == 3
        assert bool(rel_a)
        assert not TPRelation("e", TPSchema(("x",)), [], {})

    def test_sorted_tuples(self, rel_a):
        ordered = rel_a.sorted_tuples()
        assert [t.fact for t in ordered] == [("chips",), ("dates",), ("milk",)]

    def test_facts(self, rel_c):
        assert rel_c.facts() == {("milk",), ("chips",)}

    def test_distinct_points(self, rel_a):
        assert rel_a.distinct_points() == {1, 2, 3, 4, 7, 10}

    def test_endpoint_count(self, rel_a):
        assert rel_a.endpoint_count() == 6

    def test_time_span(self, rel_a):
        assert rel_a.time_span() == Interval(1, 10)
        assert TPRelation("e", TPSchema(("x",)), [], {}).time_span() is None


class TestSelection:
    def test_select_equality(self, rel_c):
        milk = rel_c.select(product="milk")
        assert len(milk) == 2
        assert milk.facts() == {("milk",)}

    def test_select_keeps_events(self, rel_c):
        milk = rel_c.select(product="milk")
        assert milk.events == rel_c.events

    def test_select_unknown_attribute(self, rel_c):
        from repro import SchemaMismatchError

        with pytest.raises(SchemaMismatchError):
            rel_c.select(color="red")

    def test_where(self, rel_c):
        late = rel_c.where(lambda t: t.start >= 6)
        assert {t.start for t in late} == {6, 7}

    def test_rename(self, rel_a):
        assert rel_a.rename("a2").name == "a2"


class TestProbabilities:
    def test_materialize_idempotent(self, rel_a):
        assert rel_a.materialize_probabilities().equivalent_to(rel_a)

    def test_materialize_fills_missing(self):
        schema = TPSchema(("x",))
        t = TPTuple(("v",), Var("e1") & ~Var("e2"), Interval(1, 2))
        r = TPRelation("r", schema, [t], {"e1": 0.5, "e2": 0.2})
        filled = r.materialize_probabilities()
        assert next(iter(filled)).p == pytest.approx(0.4)

    def test_probability_of(self, rel_a):
        t = next(iter(rel_a))
        assert rel_a.probability_of(t) == pytest.approx(0.3)


class TestComparison:
    def test_equivalent_to_self(self, rel_a):
        assert rel_a.equivalent_to(rel_a)

    def test_equivalent_ignores_order(self, rel_a):
        reversed_rel = TPRelation(
            "a", rel_a.schema, list(reversed(rel_a.tuples)), rel_a.events
        )
        assert rel_a.equivalent_to(reversed_rel)

    def test_probability_tolerance(self, rel_a):
        bumped = TPRelation(
            "a",
            rel_a.schema,
            [TPTuple(t.fact, t.lineage, t.interval, t.p + 1e-12) for t in rel_a],
            rel_a.events,
        )
        assert rel_a.equivalent_to(bumped)
        shifted = TPRelation(
            "a",
            rel_a.schema,
            [TPTuple(t.fact, t.lineage, t.interval, min(1.0, t.p + 0.01)) for t in rel_a],
            rel_a.events,
        )
        assert not rel_a.equivalent_to(shifted)

    def test_different_contents(self, rel_a, rel_b):
        assert not rel_a.equivalent_to(rel_b)


class TestRendering:
    def test_to_table_contains_rows(self, rel_a):
        table = rel_a.to_table()
        assert "product" in table
        assert "'milk'" in table
        assert "[2,10)" in table

    def test_repr(self, rel_a):
        assert "3 tuples" in repr(rel_a)

    def test_make_fact_rejects_mutables(self):
        with pytest.raises(TypeError):
            make_fact([["nested", "list"]])
