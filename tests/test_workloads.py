"""Tier-1 tests for the benchmark-suite workload generators.

Three properties keep ``repro.bench.workloads`` trustworthy as the
input source for every published benchmark number:

* **determinism** — the same ``(spec, scale, seed)`` triple produces
  the byte-identical scenario (fingerprint equality across rebuilds;
  different seeds diverge);
* **schema validity** — every generated relation re-passes the full
  ``TPRelation`` invariant check (duplicate-free per-fact chains), and
  every delta batch applies cleanly to a live store;
* **semantic round-trip** — at possible-worlds scale, every catalog
  query evaluated through ``TPDatabase.query`` matches the brute-force
  possible-worlds oracle point for point.
"""

from __future__ import annotations

import pytest

from repro.bench.workloads import (
    SCENARIOS,
    ScenarioSpec,
    build_scenario,
    iter_scenarios,
    scenario_catalog,
    tiny_spec,
)
from repro.core.relation import TPRelation
from repro.db import TPDatabase
from repro.query.parser import parse_query
from repro.semantics import query_marginals_via_worlds

SMALL_SCALE = 0.01
SEED = 7

QUERY_SPECS = [spec for spec in SCENARIOS if spec.kind == "query"]
MUTATING_SPECS = [spec for spec in SCENARIOS if spec.kind != "query"]


def small(spec: ScenarioSpec):
    return build_scenario(spec, scale=SMALL_SCALE, seed=SEED)


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------
@pytest.mark.parametrize("spec", SCENARIOS, ids=lambda s: s.name)
def test_same_seed_reproduces_fingerprint(spec):
    assert small(spec).fingerprint() == small(spec).fingerprint()


@pytest.mark.parametrize("spec", SCENARIOS, ids=lambda s: s.name)
def test_different_seed_changes_fingerprint(spec):
    a = build_scenario(spec, scale=SMALL_SCALE, seed=SEED)
    b = build_scenario(spec, scale=SMALL_SCALE, seed=SEED + 1)
    assert a.fingerprint() != b.fingerprint()


def test_scenarios_are_seed_isolated():
    """Adding/altering one scenario must not perturb another's data:
    every scenario derives its RNG streams from its own name."""
    solo = next(iter_scenarios(["uniform_setops"], scale=SMALL_SCALE, seed=SEED))
    swept = {s.name: s for s in iter_scenarios(scale=SMALL_SCALE, seed=SEED)}
    assert solo.fingerprint() == swept["uniform_setops"].fingerprint()


def test_catalog_names_are_unique_and_addressable():
    catalog = scenario_catalog()
    assert len(catalog) == len(SCENARIOS)
    names = [spec.name for spec in SCENARIOS]
    picked = [s.name for s in iter_scenarios(names[:2], scale=SMALL_SCALE, seed=SEED)]
    assert picked == names[:2]


def test_unknown_scenario_name_rejected():
    with pytest.raises(KeyError):
        list(iter_scenarios(["no_such_scenario"], scale=SMALL_SCALE, seed=SEED))


def test_invalid_axis_values_rejected():
    with pytest.raises(ValueError):
        ScenarioSpec(name="x", description="", key_distribution="bimodal")
    with pytest.raises(ValueError):
        ScenarioSpec(name="x", description="", interval_profile="huge")
    with pytest.raises(ValueError):
        ScenarioSpec(name="x", description="", kind="stress")


# ----------------------------------------------------------------------
# schema validity
# ----------------------------------------------------------------------
@pytest.mark.parametrize("spec", SCENARIOS, ids=lambda s: s.name)
def test_generated_relations_pass_full_validation(spec):
    scenario = small(spec)
    assert scenario.relations, spec.name
    for relation in scenario.relations.values():
        # Generators build with validate=False for speed; re-running the
        # invariant check proves they never needed the shortcut.
        revalidated = TPRelation.from_tuples(
            relation.name, relation.schema, relation, relation.events, validate=True
        )
        assert len(revalidated) == len(relation) > 0


@pytest.mark.parametrize("spec", MUTATING_SPECS, ids=lambda s: s.name)
def test_delta_scripts_apply_cleanly(spec):
    """Every generated batch (and session op) applies to a live store
    without duplicate-insert or missing-delete errors."""
    scenario = small(spec)
    db = TPDatabase()
    for relation in scenario.relations.values():
        db.register(relation)
    for name in scenario.relations:
        db.store(name)
    if scenario.view_query is not None:
        db.create_view("v", scenario.view_query, policy="deferred")
    for target, delta in scenario.deltas:
        db.apply(target, inserts=delta.inserts, deletes=delta.deletes)
    for op in scenario.session:
        if op.action == "query":
            db.query(op.target)
        elif op.action == "apply":
            db.apply(op.target, inserts=op.inserts, deletes=op.deletes)
        else:
            db.refresh()
    db.close()


def test_scale_shrinks_and_grows_sizes():
    spec = QUERY_SPECS[0]
    tiny = build_scenario(spec, scale=0.01, seed=SEED)
    bigger = build_scenario(spec, scale=0.05, seed=SEED)
    assert tiny.total_tuples() < bigger.total_tuples()


# ----------------------------------------------------------------------
# semantic round-trip against the possible-worlds oracle
# ----------------------------------------------------------------------
def point_probabilities(relation) -> dict:
    return {
        (t.fact, point): t.p
        for t in relation
        for point in range(t.start, t.end)
    }


@pytest.mark.parametrize("spec", QUERY_SPECS, ids=lambda s: s.name)
def test_tiny_scenarios_match_possible_worlds(spec):
    scenario = build_scenario(tiny_spec(spec, n_tuples=4, n_facts=2), seed=SEED)
    db = TPDatabase()
    for relation in scenario.relations.values():
        db.register(relation)
    for query in scenario.queries:
        result = db.query(query)
        oracle = query_marginals_via_worlds(parse_query(query), scenario.relations)
        computed = point_probabilities(result)
        for key in set(oracle) | set(computed):
            assert computed.get(key, 0.0) == pytest.approx(
                oracle.get(key, 0.0), abs=1e-9
            ), (spec.name, query, key)
