"""End-to-end integration tests over realistic (generated) datasets.

These complement the per-module hypothesis tests with fixed, larger
scenarios that chain several subsystems together: generator → database →
query pipeline → oracle comparison → serialization round trip.
"""

from __future__ import annotations

import pytest

from repro import tp_except, tp_intersect, tp_union
from repro.baselines import paper_algorithms
from repro.bench import sample_relation
from repro.datasets import (
    MeteoConfig,
    WebkitConfig,
    generate_meteo,
    generate_pair,
    generate_webkit,
    shifted_counterpart,
)
from repro.db import TPDatabase, load_json, save_json
from repro.semantics import (
    check_change_preservation,
    check_duplicate_free,
    snapshot_set_operation,
)

OPS = {"union": tp_union, "intersect": tp_intersect, "except": tp_except}


@pytest.fixture(scope="module")
def meteo_small():
    base = generate_meteo(config=MeteoConfig(400, n_stations=8, seed=21))
    return base, shifted_counterpart(base, seed=22)


@pytest.fixture(scope="module")
def webkit_small():
    base = generate_webkit(
        config=WebkitConfig(400, time_range=2_000, seed=23)
    )
    return base, shifted_counterpart(base, seed=24)


class TestDatasetOracleAgreement:
    """LAWA and every supporting baseline vs the snapshot oracle on
    simulated real-world data (bounded time ranges keep the oracle fast)."""

    @pytest.mark.parametrize("op", sorted(OPS))
    def test_meteo_lawa(self, op, meteo_small):
        r, s = meteo_small
        r = sample_relation(r, 60, seed=1)
        s = sample_relation(s, 60, seed=2)
        # Rescale the 600-second grid to unit steps for the oracle.
        r = _rescale(r, 600)
        s = _rescale(s, 600)
        expected = snapshot_set_operation(op, r, s)
        assert OPS[op](r, s).equivalent_to(expected)

    @pytest.mark.parametrize("op", sorted(OPS))
    def test_webkit_all_algorithms(self, op, webkit_small):
        r, s = webkit_small
        r = sample_relation(r, 40, seed=3)
        s = sample_relation(s, 40, seed=4)
        r = _rescale(r, 50)
        s = _rescale(s, 50)
        expected = snapshot_set_operation(op, r, s)
        for algorithm in paper_algorithms():
            if op not in algorithm.supports:
                continue
            result = algorithm.compute(op, r, s)
            assert result.equivalent_to(expected), (algorithm.name, op)


def _rescale(relation, step):
    """Coarsen a relation's time grid so the point-wise oracle stays cheap."""
    from repro import Interval, TPRelation
    from repro.core.tuple import TPTuple

    tuples = []
    for t in relation:
        lo = t.start // step
        hi = max(lo + 1, -(-t.end // step))
        tuples.append(TPTuple(t.fact, t.lineage, Interval(lo, hi), t.p))
    # Coarsening can make same-fact intervals collide; drop the later of
    # any colliding pair — only the dataset *shape* matters here.
    kept: list = []
    last_end: dict = {}
    for t in sorted(tuples, key=lambda t: t.sort_key):
        if t.fact in last_end and t.start < last_end[t.fact]:
            continue
        last_end[t.fact] = t.end
        kept.append(t)
    return TPRelation(
        relation.name, relation.schema, kept, relation.events, validate=True
    )


class TestQueryPipelineOnSynthetic:
    def test_three_relation_query_end_to_end(self):
        r1, s1 = generate_pair(200, n_facts=4, seed=31)
        db = TPDatabase()
        db.register(r1.rename("r"))
        db.register(s1.rename("s"))
        db.register(shifted_counterpart(r1, name="t", seed=32))

        result = db.query("(r | s) - t")
        oracle = snapshot_set_operation(
            "except",
            snapshot_set_operation("union", db.relation("r"), db.relation("s")),
            db.relation("t"),
        )
        assert result.equivalent_to(oracle)
        assert check_duplicate_free(result) == []
        assert check_change_preservation(result) == []

    def test_serialization_of_query_result(self, tmp_path):
        r, s = generate_pair(150, n_facts=3, seed=41)
        result = tp_except(r, s)
        path = tmp_path / "result.json"
        save_json(result, path)
        assert load_json(path).equivalent_to(result)

    def test_optimized_pipeline_against_oracle(self):
        r1, s1 = generate_pair(150, n_facts=3, seed=51)
        t1 = shifted_counterpart(r1, name="t", seed=52)
        db = TPDatabase()
        db.register(r1.rename("r"))
        db.register(s1.rename("s"))
        db.register(t1)

        optimized = db.query("r | s | t", optimize=True)
        oracle = snapshot_set_operation(
            "union",
            snapshot_set_operation("union", db.relation("r"), db.relation("s")),
            db.relation("t"),
        )
        assert optimized.equivalent_to(oracle)
