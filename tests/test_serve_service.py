"""Session stress: concurrent readers vs. a serial oracle (DESIGN.md §14).

The MVCC claim, made falsifiable: while a ``delta_storm`` workload
(reused from :mod:`repro.bench.workloads`) commits batch after batch,
every open reader session must keep answering from **one** consistent
epoch — and its answers must be bit-identical (facts, intervals,
lineage text, probabilities) to a serial oracle that replays exactly
that many batches into a fresh database and runs the same query.

Hypothesis drives the schedule: which batch each reader opens after,
the optimize level, and the workload seed.  Caching is on throughout,
so a cache that leaked across epochs, levels or sessions would show up
as an oracle divergence here.
"""

from __future__ import annotations

from dataclasses import replace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.workloads import build_scenario, scenario_catalog
from repro.db import TPDatabase
from repro.serve import QueryService

#: delta_storm, shrunk to property-test size but with enough batches
#: that reader schedules can spread across a real epoch history.
_SPEC = replace(
    scenario_catalog()["delta_storm"],
    n_tuples=120,
    n_facts=8,
    n_batches=6,
    batch_fraction=0.05,
)


def _canonical(relation) -> list:
    rows = [(t.fact, t.start, t.end, str(t.lineage), t.p) for t in relation]
    rows.sort(key=repr)
    return rows


def _oracle(scenario, upto: int, query: str, level) -> list:
    """Serial replay: fresh db, first ``upto`` batches, one query."""
    db = TPDatabase()
    for relation in scenario.relations.values():
        db.register(relation)
    for name in scenario.relations:
        db.store(name)
    for target, delta in scenario.deltas[:upto]:
        db.apply(target, inserts=delta.inserts, deletes=delta.deletes)
    return _canonical(db.query(query, optimize=level))


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    level=st.sampled_from(["off", "safe"]),
    open_after=st.lists(st.integers(0, 6), min_size=2, max_size=4),
)
def test_readers_stay_on_their_epoch_and_match_the_oracle(
    seed, level, open_after
):
    scenario = build_scenario(_SPEC, scale=1.0, seed=seed)
    queries = scenario.queries + ("r1 | r2",)
    db = TPDatabase()
    for relation in scenario.relations.values():
        db.register(relation)
    for name in scenario.relations:
        db.store(name)
    service = QueryService(db)
    writer = service.open_session()

    n_batches = len(scenario.deltas)
    schedule = sorted(min(point, n_batches) for point in open_after)
    readers: list[tuple[int, int]] = []  # (session id, batches applied at open)

    applied = 0
    pending = list(schedule)
    while pending and pending[0] == 0:
        pending.pop(0)
        readers.append((service.open_session(), 0))
    for target, delta in scenario.deltas:
        service.commit(writer, target, inserts=delta.inserts, deletes=delta.deletes)
        applied += 1
        while pending and pending[0] == applied:
            pending.pop(0)
            readers.append((service.open_session(), applied))
        # Mid-stream reads: every open reader answers from its own epoch.
        for session_id, upto in readers:
            response = service.execute(session_id, queries[0], optimize=level)
            assert _canonical(response.relation) == _oracle(
                scenario, upto, queries[0], level
            ), f"reader pinned after batch {upto} diverged mid-stream"

    # End-to-end: after the storm, each reader still answers from the
    # epoch it opened at, for every query, bit-identically to the oracle.
    for session_id, upto in readers:
        for query in queries:
            response = service.execute(session_id, query, optimize=level)
            assert _canonical(response.relation) == _oracle(
                scenario, upto, query, level
            ), f"reader pinned after batch {upto} diverged on {query!r}"
    # The writer reads its own writes: it matches the full replay.
    for query in queries:
        response = service.execute(writer, query, optimize=level)
        assert _canonical(response.relation) == _oracle(
            scenario, n_batches, query, level
        )


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_cached_and_uncached_responses_are_bit_identical(seed):
    scenario = build_scenario(_SPEC, scale=1.0, seed=seed)
    db = TPDatabase()
    for relation in scenario.relations.values():
        db.register(relation)
    for name in scenario.relations:
        db.store(name)
    service = QueryService(db)
    session = service.open_session()
    query = scenario.queries[0]
    cold = service.execute(session, query, optimize="safe")
    hot = service.execute(session, query, optimize="safe")
    assert cold.cached is False and hot.cached is True
    assert _canonical(hot.relation) == _canonical(cold.relation)
    assert _canonical(hot.relation) == _oracle(scenario, 0, query, "safe")
