"""Cross-validation of every baseline against the snapshot oracle, plus
interface-contract tests (Table II capability enforcement)."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings

from repro import UnsupportedOperationError
from repro.baselines import (
    ALL_OPERATIONS,
    LawaAlgorithm,
    NormAlgorithm,
    OipAlgorithm,
    SweeplineAlgorithm,
    TimelineIndexAlgorithm,
    TpdbAlgorithm,
)
from repro.baselines.columnar_algorithm import ColumnarAlgorithm
from repro.semantics import (
    check_change_preservation,
    check_duplicate_free,
    snapshot_set_operation,
)

from .strategies import tp_relation_pair

relaxed = settings(
    max_examples=40, suppress_health_check=[HealthCheck.too_slow], deadline=None
)

ALGORITHMS = {
    "LAWA": LawaAlgorithm,
    "NORM": NormAlgorithm,
    "TPDB": TpdbAlgorithm,
    "OIP": OipAlgorithm,
    "TI": TimelineIndexAlgorithm,
    "SWEEP": SweeplineAlgorithm,
    "LAWA-COL": ColumnarAlgorithm,
}

SUPPORTED = [
    (name, op)
    for name, cls in ALGORITHMS.items()
    for op in ALL_OPERATIONS
    if op in cls.supports
]

UNSUPPORTED = [
    (name, op)
    for name, cls in ALGORITHMS.items()
    for op in ALL_OPERATIONS
    if op not in cls.supports
]


@pytest.mark.parametrize("name,op", SUPPORTED)
class TestSupportedOperations:
    @relaxed
    @given(pair=tp_relation_pair())
    def test_matches_oracle(self, name, op, pair):
        r, s = pair
        expected = snapshot_set_operation(op, r, s)
        actual = ALGORITHMS[name]().compute(op, r, s)
        assert actual.equivalent_to(expected), (
            f"{name}/{op} mismatch:\nexpected:\n{expected.to_table()}\n"
            f"actual:\n{actual.to_table()}"
        )

    @relaxed
    @given(pair=tp_relation_pair())
    def test_output_change_preserved_and_duplicate_free(self, name, op, pair):
        r, s = pair
        result = ALGORITHMS[name]().compute(op, r, s)
        assert check_change_preservation(result) == []
        assert check_duplicate_free(result) == []

    def test_paper_example(self, name, op, rel_a, rel_c):
        expected = snapshot_set_operation(op, rel_a, rel_c)
        actual = ALGORITHMS[name]().compute(op, rel_a, rel_c)
        assert actual.equivalent_to(expected)


@pytest.mark.parametrize("name,op", UNSUPPORTED)
class TestUnsupportedOperations:
    def test_raises(self, name, op, rel_a, rel_c):
        with pytest.raises(UnsupportedOperationError):
            ALGORITHMS[name]().compute(op, rel_a, rel_c)


class TestInterfaceContract:
    def test_unknown_operation_rejected(self, rel_a, rel_c):
        with pytest.raises(UnsupportedOperationError):
            LawaAlgorithm().compute("xor", rel_a, rel_c)

    def test_schema_compatibility_checked(self, rel_a):
        from repro import SchemaMismatchError, TPRelation

        wide = TPRelation.from_rows(
            "w", ("product", "store"), [("milk", "zurich", 1, 3, 0.5)]
        )
        with pytest.raises(SchemaMismatchError):
            NormAlgorithm().compute("union", rel_a, wide)

    def test_result_name_mentions_algorithm(self, rel_a, rel_c):
        result = NormAlgorithm().compute("union", rel_a, rel_c)
        assert "[NORM]" in result.name

    def test_materialize_false_defers_probabilities(self, rel_a, rel_c):
        result = LawaAlgorithm().compute(
            "intersect", rel_a, rel_c, materialize=False
        )
        assert all(t.p is None for t in result)

    def test_events_merged_into_result(self, rel_a, rel_c):
        result = LawaAlgorithm().compute("union", rel_a, rel_c)
        assert set(result.events) == set(rel_a.events) | set(rel_c.events)

    def test_repr_lists_supported_ops(self):
        assert "intersect" in repr(OipAlgorithm())
