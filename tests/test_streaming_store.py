"""Streaming set operations fed by store segment iterators.

Section VI-B's constant-space claim, delivered end to end: a
:class:`SegmentStore` keeps its segments born-sorted, so
:meth:`SegmentStore.iter_sorted` is a valid ``(F, Ts)``-ordered feed for
``stream_union``/``stream_intersect``/``stream_except`` — no
materialization, no sorting pass, on either side of the pipeline.  These
tests pin the streamed output against the materialized fused kernels,
before and after mutations.
"""

from __future__ import annotations

import pytest

from repro import stream_except, stream_intersect, stream_union, tp_set_operation
from repro.datasets import generate_pair
from repro.store import SegmentStore

STREAMS = {
    "union": stream_union,
    "intersect": stream_intersect,
    "except": stream_except,
}


def _triples(tuples):
    return [(t.fact, t.start, t.end, t.lineage) for t in tuples]


@pytest.fixture
def stores(rel_a, rel_b):
    return SegmentStore.from_relation(rel_a), SegmentStore.from_relation(rel_b)


class TestStreamedStoreFeeds:
    @pytest.mark.parametrize("op", list(STREAMS))
    def test_stream_matches_materialized_kernel(self, stores, op):
        r, s = stores
        streamed = list(STREAMS[op](r.iter_sorted(), s.iter_sorted()))
        kernel = tp_set_operation(op, r.snapshot(), s.snapshot(), materialize=False)
        assert _triples(streamed) == _triples(kernel)

    @pytest.mark.parametrize("op", list(STREAMS))
    def test_stream_after_mutations(self, stores, op):
        r, s = stores
        r.apply(
            inserts=[("milk", 12, 15, 0.5), ("beer", 0, 4, 0.4)],
            deletes=[("chips", 4, 7)],
        )
        s.insert([("dates", 1, 6, 0.7)])
        streamed = list(STREAMS[op](r.iter_sorted(), s.iter_sorted()))
        kernel = tp_set_operation(op, r.snapshot(), s.snapshot(), materialize=False)
        assert _triples(streamed) == _triples(kernel)

    def test_feed_is_lazy(self, stores):
        """The feed is a generator — consuming one output tuple must not
        exhaust it (the constant-space contract)."""
        r, s = stores
        feed_r, feed_s = r.iter_sorted(), s.iter_sorted()
        stream = stream_union(feed_r, feed_s)
        first = next(stream)
        assert first.lineage is not None
        rest = list(stream)
        kernel = tp_set_operation(
            "union", r.snapshot(), s.snapshot(), materialize=False
        )
        assert _triples([first] + rest) == _triples(kernel)

    def test_multi_segment_store_feed(self):
        """Segment boundaries must be invisible to the stream consumer."""
        r0, s0 = generate_pair(300, n_facts=3, seed=11)
        r = SegmentStore.from_relation(r0)
        s = SegmentStore.from_relation(s0)
        # Force many segments.
        tiny_r = SegmentStore("r", r.schema.attributes, segment_capacity=8)
        tiny_r.insert([(*t.fact, t.start, t.end, t.p) for t in r0])
        assert tiny_r.segment_stats()["segments"] > 3
        streamed = list(stream_intersect(tiny_r.iter_sorted(), s.iter_sorted()))
        kernel = tp_set_operation(
            "intersect", tiny_r.snapshot(), s.snapshot(), materialize=False
        )
        # Identifiers differ (fresh store mints its own), so compare the
        # temporal shape; lineage equality is covered by the fixtures above.
        assert [(t.fact, t.start, t.end) for t in streamed] == [
            (t.fact, t.start, t.end) for t in kernel
        ]

    def test_unsorted_feed_still_rejected(self, stores):
        r, s = stores
        backwards = reversed(list(r.iter_sorted()))
        with pytest.raises(ValueError, match="sorted"):
            list(stream_union(backwards, s.iter_sorted()))
