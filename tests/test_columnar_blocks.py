"""Columnar block layer: packing, wire round-trips, degenerate shapes.

Satellite coverage for DESIGN.md §15: the block encode/sweep/decode
cycle must be bit-identical to the tuple path on the degenerate inputs
where off-by-one column handling would first show — empty relations,
single-tuple groups, all-identical intervals, and the ``None``-padded
facts outer joins emit.
"""

from __future__ import annotations

import pickle

import pytest

from repro.algebra.join import tp_join_operation
from repro.core.blocks import ColumnarBlock, unify_fact_codes
from repro.core.interval import Interval
from repro.core.relation import TPRelation
from repro.core.schema import TPSchema, make_fact
from repro.core.setops import tp_set_operation
from repro.core.tuple import base_tuple
from repro.exec.config import columnar_execution
from repro.store import SegmentStore


def rel(name: str, rows, attributes=("fact",)) -> TPRelation:
    """``rows`` are (fact_values..., ts, te, p) over ``attributes``."""
    return TPRelation.from_rows(name, attributes, rows)


def assert_block_roundtrip(relation: TPRelation) -> None:
    """from_tuples → tuples() and encode() → decode() both reproduce
    the input exactly, including lineage object identity."""
    tuples = relation.sorted_tuples()
    block = ColumnarBlock.from_tuples(tuples)
    rebuilt = block.tuples()
    assert len(rebuilt) == len(tuples)
    for original, copy in zip(tuples, rebuilt):
        assert copy.fact == original.fact
        assert copy.interval == original.interval
        assert copy.lineage is original.lineage
        assert copy.p == original.p
    wired = ColumnarBlock.decode(pickle.loads(pickle.dumps(block.encode())))
    for original, copy in zip(tuples, wired.tuples()):
        assert copy.fact == original.fact
        assert copy.interval == original.interval
        assert copy.lineage is original.lineage
        assert copy.p == original.p


def assert_same_result(columnar: TPRelation, tuple_path: TPRelation) -> None:
    assert len(columnar) == len(tuple_path)
    for c, t in zip(columnar, tuple_path):
        assert c.fact == t.fact
        assert c.interval == t.interval
        assert c.lineage is t.lineage
        assert c.p == t.p


class TestDegenerateShapes:
    def test_empty_relation(self):
        empty = rel("r", [])
        assert_block_roundtrip(empty)
        block = ColumnarBlock.from_tuples(empty.sorted_tuples())
        assert len(block.starts) == 0 and block.facts == []

    @pytest.mark.parametrize("op", ("union", "intersect", "except"))
    def test_empty_operands_sweep(self, op):
        empty = rel("r", [])
        other = rel("s", [("x", 0, 5, 0.5), ("y", 2, 9, 0.25)])
        for left, right in ((empty, other), (other, empty), (empty, empty)):
            reference = tp_set_operation(op, left, right)
            with columnar_execution(True):
                result = tp_set_operation(op, left, right)
            assert_same_result(result, reference)

    def test_single_tuple_groups(self):
        r = rel("r", [("x", 0, 7, 0.5), ("y", 3, 4, 0.9)])
        s = rel("s", [("x", 2, 5, 0.4)])
        assert_block_roundtrip(r)
        assert_block_roundtrip(s)
        for op in ("union", "intersect", "except"):
            reference = tp_set_operation(op, r, s)
            with columnar_execution(True):
                result = tp_set_operation(op, r, s)
            assert_same_result(result, reference)

    def test_all_identical_intervals(self):
        """Same interval on every fact: every sweep event ties on time."""
        r = rel("r", [("x", 3, 8, 0.5), ("y", 3, 8, 0.25), ("z", 3, 8, 0.75)])
        s = rel("s", [("x", 3, 8, 0.4), ("z", 3, 8, 0.6)])
        assert_block_roundtrip(r)
        for op in ("union", "intersect", "except"):
            reference = tp_set_operation(op, r, s)
            with columnar_execution(True):
                result = tp_set_operation(op, r, s)
            assert_same_result(result, reference)

    def test_null_padded_outer_join_output_roundtrips(self):
        """Outer joins pad facts with ``None`` — the null-safe fact order
        must survive block packing and the wire form."""
        r = rel("r", [("k1", "a1", 0, 6, 0.5), ("k2", "a2", 1, 4, 0.3)], ("k", "a"))
        s = rel("s", [("k1", "b1", 2, 9, 0.7)], ("k", "b"))
        padded = tp_join_operation("full_outer", r, s, ("k",))
        assert any(None in t.fact for t in padded)
        assert_block_roundtrip(padded)
        with columnar_execution(True):
            columnar = tp_join_operation("full_outer", r, s, ("k",))
        assert_same_result(columnar, padded)

    def test_int64_overflow_falls_back(self):
        huge = TPRelation(
            "r",
            TPSchema(("fact",)),
            [base_tuple(("x",), "r1", Interval(0, 2**70), 0.5)],
            {"r1": 0.5},
            validate=False,
        )
        other = rel("s", [("x", 1, 5, 0.4)])
        with pytest.raises(OverflowError):
            ColumnarBlock.from_tuples(huge.sorted_tuples())
        reference = tp_set_operation("union", huge, other)
        with columnar_execution(True):
            result = tp_set_operation("union", huge, other)
        assert_same_result(result, reference)


class TestFactCodeUnification:
    def test_joint_codes_preserve_order_and_equality(self):
        left = ColumnarBlock.from_tuples(
            rel("r", [("a", 0, 1, 0.5), ("c", 0, 1, 0.5)]).sorted_tuples()
        )
        right = ColumnarBlock.from_tuples(
            rel("s", [("b", 0, 1, 0.5), ("c", 0, 1, 0.5)]).sorted_tuples()
        )
        map_l, map_r = unify_fact_codes(left.facts, right.facts)
        coded = sorted(
            [(map_l[i], f) for i, f in enumerate(left.facts)]
            + [(map_r[i], f) for i, f in enumerate(right.facts)]
        )
        # Equal facts share a code; distinct facts get codes in fact order.
        facts_by_code: dict[int, object] = {}
        for code, fact in coded:
            assert facts_by_code.setdefault(code, fact) == fact
        ordered = [facts_by_code[c] for c in sorted(facts_by_code)]
        assert ordered == sorted(ordered)

    def test_disjoint_and_empty_sides(self):
        block = ColumnarBlock.from_tuples(
            rel("r", [("a", 0, 1, 0.5)]).sorted_tuples()
        )
        empty = ColumnarBlock.from_tuples([])
        map_l, map_r = unify_fact_codes(block.facts, empty.facts)
        assert list(map_l) == [0] and list(map_r) == []


class TestStoreBlocks:
    def test_block_of_caches_until_mutation(self):
        store = SegmentStore("s", ("k",))
        store.insert([("a", 0, 10, 0.5)])
        fact = make_fact(("a",))
        block = store.block_of(fact)
        assert block is not None
        assert store.block_of(fact) is block
        store.insert([("a", 20, 30, 0.9)])
        fresh = store.block_of(fact)
        assert fresh is not block
        assert list(fresh.starts) == [0, 20]

    def test_block_of_unknown_fact(self):
        store = SegmentStore("s", ("k",))
        assert store.block_of(make_fact(("missing",))) is None

    def test_relation_block_cache(self):
        r = rel("r", [("x", 0, 5, 0.5)])
        block = r.columnar_block()
        assert r.columnar_block() is block
        assert block.tuples()[0].lineage is r.sorted_tuples()[0].lineage
