"""Tests for the lineage formula AST and smart constructors."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.lineage import (
    FALSE,
    TRUE,
    And,
    Or,
    Var,
    evaluate,
    formula_size,
    land,
    lnot,
    lor,
    map_variables,
    restrict,
    variable_occurrences,
    variables,
)

a, b, c = Var("a"), Var("b"), Var("c")


@st.composite
def formulas(draw, depth: int = 3):
    """Random small lineage formulas over variables a, b, c."""
    if depth == 0:
        return draw(st.sampled_from([a, b, c]))
    kind = draw(st.integers(0, 3))
    if kind == 0:
        return draw(st.sampled_from([a, b, c]))
    if kind == 1:
        return lnot(draw(formulas(depth=depth - 1)))
    left = draw(formulas(depth=depth - 1))
    right = draw(formulas(depth=depth - 1))
    return land(left, right) if kind == 2 else lor(left, right)


class TestConstructors:
    def test_land_flattens(self):
        assert land(a, land(b, c)) == land(land(a, b), c) == And((a, b, c))

    def test_lor_flattens(self):
        assert lor(a, lor(b, c)) == lor(lor(a, b), c) == Or((a, b, c))

    def test_single_operand_passthrough(self):
        assert land(a) is a
        assert lor(a) is a

    def test_empty_conjunction_is_true(self):
        assert land() == TRUE

    def test_empty_disjunction_is_false(self):
        assert lor() == FALSE

    def test_constant_folding_and(self):
        assert land(a, TRUE) is a
        assert land(a, FALSE) == FALSE

    def test_constant_folding_or(self):
        assert lor(a, FALSE) is a
        assert lor(a, TRUE) == TRUE

    def test_double_negation(self):
        assert lnot(lnot(a)) is a

    def test_negated_constants(self):
        assert lnot(TRUE) == FALSE
        assert lnot(FALSE) == TRUE

    def test_operator_sugar(self):
        assert (a & b) == land(a, b)
        assert (a | b) == lor(a, b)
        assert ~a == lnot(a)

    def test_order_preserved(self):
        assert land(a, b) != land(b, a)  # syntactic comparison


class TestPrinting:
    def test_paper_notation(self):
        c1, a1, b1 = Var("c1"), Var("a1"), Var("b1")
        assert str(c1 & ~(a1 | b1)) == "c1∧¬(a1∨b1)"

    def test_and_not(self):
        assert str(a & ~b) == "a∧¬b"

    def test_or_inside_and_parenthesized(self):
        assert str(land(a, lor(b, c))) == "a∧(b∨c)"

    def test_and_inside_or_unparenthesized(self):
        assert str(lor(a, land(b, c))) == "a∨b∧c"

    def test_constants(self):
        assert str(TRUE) == "⊤"
        assert str(FALSE) == "⊥"


class TestStructure:
    def test_variables(self):
        assert variables(a & ~(b | c)) == {"a", "b", "c"}

    def test_variable_occurrences(self):
        formula = (a & b) | (a & c)
        assert variable_occurrences(formula) == {"a": 2, "b": 1, "c": 1}

    def test_formula_size(self):
        assert formula_size(a) == 1
        assert formula_size(a & ~b) == 4  # And, a, Not, b

    def test_map_variables(self):
        renamed = map_variables(a & ~b, lambda name: name.upper())
        assert str(renamed) == "A∧¬B"


class TestEvaluate:
    def test_basic(self):
        formula = a & ~(b | c)
        assert evaluate(formula, {"a": True, "b": False, "c": False})
        assert not evaluate(formula, {"a": True, "b": True, "c": False})

    def test_missing_variable(self):
        with pytest.raises(KeyError):
            evaluate(a & b, {"a": True})

    @given(formulas(), st.booleans(), st.booleans(), st.booleans())
    def test_de_morgan(self, formula, va, vb, vc):
        env = {"a": va, "b": vb, "c": vc}
        assert evaluate(lnot(land(a, formula)), env) == evaluate(
            lor(lnot(a), lnot(formula)), env
        )


class TestRestrict:
    def test_restrict_true(self):
        assert restrict(a & b, "a", True) is b

    def test_restrict_false_kills_conjunction(self):
        assert restrict(a & b, "a", False) == FALSE

    def test_restrict_or(self):
        assert restrict(a | b, "a", True) == TRUE
        assert restrict(a | b, "a", False) is b

    @given(formulas(), st.booleans(), st.booleans(), st.booleans())
    def test_restrict_agrees_with_evaluate(self, formula, va, vb, vc):
        env = {"a": va, "b": vb, "c": vc}
        restricted = restrict(formula, "a", va)
        assert evaluate(restricted, env) == evaluate(formula, env)

    @given(formulas())
    def test_restrict_removes_variable(self, formula):
        restricted = restrict(formula, "a", True)
        assert "a" not in variables(restricted)
