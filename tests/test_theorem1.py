"""Tests for Theorem 1 and Corollary 1 (Section V-B of the paper).

Non-repeating TP set queries over duplicate-free relations must yield
lineages in one-occurrence form, making marginal probabilities computable
by the linear-time factorized valuation.  Repeating queries may (and do)
break 1OF.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import probability_1of, probability_shannon
from repro.db import TPDatabase
from repro.lineage import is_one_occurrence_form
from repro.query import analyze, parse_query

from .strategies import tp_relation

relaxed = settings(
    max_examples=30, suppress_health_check=[HealthCheck.too_slow], deadline=None
)


@st.composite
def non_repeating_query(draw, names):
    """A random Def. 4 query using each relation at most once."""
    available = list(names)
    draw(st.randoms())  # consume entropy deterministically

    def build(lo: int, hi: int) -> str:
        if hi - lo == 1:
            return available[lo]
        split = draw(st.integers(min_value=lo + 1, max_value=hi - 1))
        op = draw(st.sampled_from(["|", "&", "-"]))
        return f"({build(lo, split)} {op} {build(split, hi)})"

    count = draw(st.integers(min_value=1, max_value=len(available)))
    return build(0, count)


class TestTheorem1:
    @relaxed
    @given(
        r1=tp_relation("x1", max_facts=2, max_intervals=3),
        r2=tp_relation("x2", max_facts=2, max_intervals=3),
        r3=tp_relation("x3", max_facts=2, max_intervals=3),
        query=non_repeating_query(["r1", "r2", "r3"]),
    )
    def test_non_repeating_queries_yield_1of(self, r1, r2, r3, query):
        db = TPDatabase()
        db.register(r1.rename("r1"))
        db.register(r2.rename("r2"))
        db.register(r3.rename("r3"))
        assert analyze(parse_query(query)).non_repeating
        result = db.query(query)
        for t in result:
            assert is_one_occurrence_form(t.lineage), (query, str(t.lineage))

    @relaxed
    @given(
        r1=tp_relation("x1", max_facts=1, max_intervals=3),
        r2=tp_relation("x2", max_facts=1, max_intervals=3),
        r3=tp_relation("x3", max_facts=1, max_intervals=3),
        query=non_repeating_query(["r1", "r2", "r3"]),
    )
    def test_corollary1_linear_valuation_correct(self, r1, r2, r3, query):
        """For 1OF lineages the linear-time valuation equals Shannon."""
        db = TPDatabase()
        db.register(r1.rename("r1"))
        db.register(r2.rename("r2"))
        db.register(r3.rename("r3"))
        result = db.query(query, materialize=False)
        events = result.events
        for t in result:
            fast = probability_1of(t.lineage, events)
            exact = probability_shannon(t.lineage, events)
            assert fast == pytest.approx(exact)

    def test_repeating_query_breaks_1of(self):
        db = TPDatabase()
        db.create_relation("r", ("x",), [("v", 0, 5, 0.5)])
        db.create_relation("s", ("x",), [("v", 0, 5, 0.5)])
        result = db.query("(r | s) - (r & s)", materialize=False)
        assert any(not is_one_occurrence_form(t.lineage) for t in result)

    def test_depth_nesting_stays_1of(self, rel_a, rel_b, rel_c):
        """The paper's own plan: c −Tp (a ∪Tp b), lineage like c2∧¬(a1∨b1)."""
        db = TPDatabase()
        for rel in (rel_a, rel_b, rel_c):
            db.register(rel)
        for t in db.query("c - (a | b)"):
            assert is_one_occurrence_form(t.lineage)
