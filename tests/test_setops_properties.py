"""Property-based correctness of LAWA set operations.

The central invariant suite: on random duplicate-free relations, the LAWA
implementations must (a) agree exactly with the literal snapshot-semantics
oracle, (b) satisfy snapshot reducibility (Def. 1), change preservation
(Def. 2) and duplicate-freeness, and (c) produce 1OF lineages whose exact
probabilities match brute-force possible-world enumeration.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings

from repro import tp_except, tp_intersect, tp_union
from repro.lineage import is_one_occurrence_form
from repro.semantics import (
    check_change_preservation,
    check_duplicate_free,
    check_snapshot_reducibility,
    marginal_via_worlds,
    snapshot_set_operation,
)

from .strategies import tp_relation_pair

OPS = {"union": tp_union, "intersect": tp_intersect, "except": tp_except}

relaxed = settings(
    max_examples=60, suppress_health_check=[HealthCheck.too_slow], deadline=None
)


@pytest.mark.parametrize("op", sorted(OPS))
class TestAgainstSnapshotOracle:
    @relaxed
    @given(pair=tp_relation_pair())
    def test_matches_oracle(self, op, pair):
        r, s = pair
        expected = snapshot_set_operation(op, r, s)
        actual = OPS[op](r, s)
        assert actual.equivalent_to(expected), (
            f"{op} mismatch:\nexpected:\n{expected.to_table()}\n"
            f"actual:\n{actual.to_table()}"
        )

    @relaxed
    @given(pair=tp_relation_pair())
    def test_snapshot_reducibility(self, op, pair):
        r, s = pair
        result = OPS[op](r, s)
        assert check_snapshot_reducibility(op, r, s, result) == []

    @relaxed
    @given(pair=tp_relation_pair())
    def test_change_preservation(self, op, pair):
        r, s = pair
        assert check_change_preservation(OPS[op](r, s)) == []

    @relaxed
    @given(pair=tp_relation_pair())
    def test_output_duplicate_free(self, op, pair):
        r, s = pair
        assert check_duplicate_free(OPS[op](r, s)) == []

    @relaxed
    @given(pair=tp_relation_pair())
    def test_single_operation_lineage_in_1of(self, op, pair):
        """Theorem 1, base case: one operation over base relations."""
        r, s = pair
        for t in OPS[op](r, s):
            assert is_one_occurrence_form(t.lineage)

    @relaxed
    @given(pair=tp_relation_pair())
    def test_output_size_linear(self, op, pair):
        """Prop. 1 consequence: at most nr + ns − fd output tuples."""
        r, s = pair
        if not len(r) and not len(s):
            return
        fd = len(r.facts() | s.facts())
        bound = r.endpoint_count() + s.endpoint_count() - max(1, fd)
        assert len(OPS[op](r, s)) <= max(bound, 0) + 1


@pytest.mark.parametrize("op", sorted(OPS))
class TestPossibleWorlds:
    @settings(max_examples=25, deadline=None)
    @given(pair=tp_relation_pair(max_facts=2, max_intervals=2))
    def test_probabilities_match_world_enumeration(self, op, pair):
        """Def. 1 numerically: P(fact at t) equals the summed probability
        of the worlds in which the per-world operation contains it."""
        r, s = pair
        if len(r.events) + len(s.events) > 10:
            return  # keep 2^n enumeration cheap
        result = OPS[op](r, s)
        for t in result:
            for point in (t.start, t.end - 1):
                expected = marginal_via_worlds(op, r, s, t.fact, point)
                assert t.p == pytest.approx(expected, abs=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(pair=tp_relation_pair(max_facts=2, max_intervals=2))
    def test_absent_points_have_zero_marginal(self, op, pair):
        """Where the result has no tuple, the world-marginal must be 0."""
        r, s = pair
        if len(r.events) + len(s.events) > 10:
            return
        result = OPS[op](r, s)
        span_points = set()
        for u in list(r) + list(s):
            span_points.update(range(u.start, u.end))
        facts = r.facts() | s.facts()
        present = {
            (u.fact, point)
            for u in result
            for point in range(u.start, u.end)
        }
        for fact in facts:
            for point in span_points:
                if (fact, point) not in present:
                    assert marginal_via_worlds(op, r, s, fact, point) == pytest.approx(
                        0.0, abs=1e-12
                    )


class TestAlgebraicIdentities:
    @settings(max_examples=40, deadline=None)
    @given(pair=tp_relation_pair())
    def test_intersection_subset_of_union(self, pair):
        r, s = pair
        union_points = {
            (t.fact, p) for t in tp_union(r, s) for p in range(t.start, t.end)
        }
        inter_points = {
            (t.fact, p) for t in tp_intersect(r, s) for p in range(t.start, t.end)
        }
        assert inter_points <= union_points

    @settings(max_examples=40, deadline=None)
    @given(pair=tp_relation_pair())
    def test_except_covers_left_exactly(self, pair):
        """r −Tp s keeps *every* point of r (probabilistic semantics)."""
        r, s = pair
        left_points = {
            (t.fact, p) for t in r for p in range(t.start, t.end)
        }
        diff_points = {
            (t.fact, p) for t in tp_except(r, s) for p in range(t.start, t.end)
        }
        assert diff_points == left_points

    @settings(max_examples=40, deadline=None)
    @given(pair=tp_relation_pair())
    def test_union_covers_both(self, pair):
        r, s = pair
        expected = {
            (t.fact, p) for t in list(r) + list(s) for p in range(t.start, t.end)
        }
        union_points = {
            (t.fact, p) for t in tp_union(r, s) for p in range(t.start, t.end)
        }
        assert union_points == expected

    @settings(max_examples=40, deadline=None)
    @given(pair=tp_relation_pair())
    def test_self_union_covers_self(self, pair):
        """r ∪Tp r covers exactly r's points, with original probabilities.

        The lineage of each output tuple is λ∨λ (a repeated subgoal!),
        which is not in 1OF — the valuation must still return P(λ),
        exercising the Shannon fallback of the dispatcher.
        """
        r, _ = pair
        result = tp_union(r, r)
        points_expected = {
            (t.fact, p) for t in r for p in range(t.start, t.end)
        }
        points_actual = {
            (t.fact, p) for t in result for p in range(t.start, t.end)
        }
        assert points_actual == points_expected
        original = {(t.fact, t.start): t.p for t in r}
        for t in result:
            key = (t.fact, t.start)
            if key in original:
                assert t.p == pytest.approx(original[key])
