"""Tests for the workload generators, overlap metric and dataset stats."""

from __future__ import annotations

import pytest

from repro import TPRelation
from repro.datasets import (
    TABLE_III_CONFIGS,
    MeteoConfig,
    SyntheticSpec,
    WebkitConfig,
    dataset_stats,
    fact_overlap_counts,
    generate_calibrated_pair,
    generate_meteo,
    generate_pair,
    generate_relation,
    generate_webkit,
    overlapping_factor,
    render_stats_table,
    shifted_counterpart,
)
from repro.datasets.meteo import STEP_SECONDS
from repro.semantics import check_duplicate_free


class TestSyntheticGenerator:
    def test_size_and_facts(self):
        r = generate_relation("r", SyntheticSpec(n_tuples=100, n_facts=7, seed=1))
        assert len(r) == 100
        assert len(r.facts()) == 7

    def test_duplicate_free(self):
        r = generate_relation("r", SyntheticSpec(n_tuples=500, n_facts=3, seed=2))
        assert check_duplicate_free(r) == []

    def test_deterministic_by_seed(self):
        spec = SyntheticSpec(n_tuples=50, seed=9)
        assert generate_relation("r", spec).contents() == generate_relation(
            "r", spec
        ).contents()

    def test_different_seeds_differ(self):
        r1 = generate_relation("r", SyntheticSpec(n_tuples=50, seed=1))
        r2 = generate_relation("r", SyntheticSpec(n_tuples=50, seed=2))
        assert r1.contents() != r2.contents()

    def test_interval_length_bounds(self):
        spec = SyntheticSpec(n_tuples=200, max_interval_length=4, seed=3)
        r = generate_relation("r", spec)
        assert all(1 <= t.end - t.start <= 4 for t in r)

    def test_fact_regions_disjoint(self):
        r = generate_relation("r", SyntheticSpec(n_tuples=60, n_facts=3, seed=4))
        spans = {}
        for t in r:
            lo, hi = spans.get(t.fact, (t.start, t.end))
            spans[t.fact] = (min(lo, t.start), max(hi, t.end))
        ordered = sorted(spans.values())
        for (_, hi), (lo, _) in zip(ordered, ordered[1:]):
            assert hi <= lo

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            SyntheticSpec(n_tuples=0)
        with pytest.raises(ValueError):
            SyntheticSpec(n_tuples=5, n_facts=6)
        with pytest.raises(ValueError):
            SyntheticSpec(n_tuples=5, max_interval_length=0)
        with pytest.raises(ValueError):
            SyntheticSpec(n_tuples=5, max_gap=-1)

    def test_pair_shares_region_layout(self):
        r, s = generate_pair(300, n_facts=3, seed=5)
        assert r.facts() == s.facts()
        assert overlapping_factor(r, s) > 0

    def test_table3_configs_monotone_stress(self):
        """Higher nominal OF configs must realize higher measured OF."""
        measured = []
        for nominal in sorted(TABLE_III_CONFIGS):
            r, s = generate_pair(3000, seed=6, **TABLE_III_CONFIGS[nominal])
            measured.append(overlapping_factor(r, s))
        assert measured == sorted(measured)


class TestCalibratedPair:
    @pytest.mark.parametrize("target", [0.03, 0.1, 0.4, 0.6, 0.8])
    def test_hits_target(self, target):
        r, s = generate_calibrated_pair(4000, target, seed=8)
        assert overlapping_factor(r, s) == pytest.approx(target, abs=0.05)

    def test_duplicate_free(self):
        r, s = generate_calibrated_pair(1000, 0.5, seed=8)
        assert check_duplicate_free(r) == []
        assert check_duplicate_free(s) == []

    def test_bad_target(self):
        with pytest.raises(ValueError):
            generate_calibrated_pair(10, 1.5)

    def test_bad_gap(self):
        with pytest.raises(ValueError):
            generate_calibrated_pair(10, 0.5, max_gap=1)


class TestOverlapMetric:
    def test_exact_match_is_one(self):
        r = TPRelation.from_rows("r", ("x",), [("f", 1, 5, 0.5)])
        s = TPRelation.from_rows("s", ("x",), [("f", 1, 5, 0.5)])
        assert overlapping_factor(r, s) == 1.0

    def test_disjoint_is_zero(self):
        r = TPRelation.from_rows("r", ("x",), [("f", 1, 5, 0.5)])
        s = TPRelation.from_rows("s", ("x",), [("f", 7, 9, 0.5)])
        assert overlapping_factor(r, s) == 0.0

    def test_empty_inputs(self):
        empty = TPRelation.from_rows("r", ("x",), [])
        assert overlapping_factor(empty, empty) == 0.0

    def test_half_overlap_hand_computed(self):
        # Timeline: [0,2) r only, [2,4) both, [4,6) s only → 1/3.
        r = TPRelation.from_rows("r", ("x",), [("f", 0, 4, 0.5)])
        s = TPRelation.from_rows("s", ("x",), [("f", 2, 6, 0.5)])
        assert overlapping_factor(r, s) == pytest.approx(1 / 3)

    def test_per_fact_counts(self):
        r = TPRelation.from_rows("r", ("x",), [("f", 0, 4, 0.5), ("g", 0, 2, 0.5)])
        s = TPRelation.from_rows("s", ("x",), [("f", 2, 6, 0.5)])
        counts = fact_overlap_counts(r, s)
        assert counts[("f",)] == (1, 3)
        assert counts[("g",)] == (0, 1)


class TestMeteo:
    def test_shape(self):
        meteo = generate_meteo(config=MeteoConfig(4000, seed=1))
        stats = dataset_stats(meteo)
        assert stats.cardinality == 4000
        assert stats.n_facts == 80
        assert stats.min_duration >= STEP_SECONDS
        assert stats.min_duration % STEP_SECONDS == 0
        assert check_duplicate_free(meteo) == []

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MeteoConfig(10, n_stations=80)
        with pytest.raises(ValueError):
            MeteoConfig(1000, persistence=1.0)

    def test_deterministic(self):
        a = generate_meteo(config=MeteoConfig(500, seed=3))
        b = generate_meteo(config=MeteoConfig(500, seed=3))
        assert a.contents() == b.contents()


class TestWebkit:
    def test_shape(self):
        webkit = generate_webkit(config=WebkitConfig(4000, seed=1))
        stats = dataset_stats(webkit)
        # Many facts, few revisions per file, bursty boundaries.
        assert stats.n_facts > 1000
        assert stats.max_boundary_burst > 100
        assert check_duplicate_free(webkit) == []

    def test_config_validation(self):
        with pytest.raises(ValueError):
            WebkitConfig(0)
        with pytest.raises(ValueError):
            WebkitConfig(10, revisions_per_file=0)
        with pytest.raises(ValueError):
            WebkitConfig(10, initial_import_fraction=0.0)

    def test_initial_import_burst(self):
        webkit = generate_webkit(config=WebkitConfig(3000, seed=2))
        starts_at_zero = sum(1 for t in webkit if t.start == 0)
        assert starts_at_zero > 0.3 * len(webkit.facts())


class TestShiftedCounterpart:
    def test_durations_preserved(self, rel_a):
        shifted = shifted_counterpart(rel_a, seed=5)
        original = sorted(t.end - t.start for t in rel_a)
        new = sorted(t.end - t.start for t in shifted)
        assert original == new

    def test_duplicate_free(self):
        meteo = generate_meteo(config=MeteoConfig(2000, seed=4))
        shifted = shifted_counterpart(meteo, seed=6)
        assert check_duplicate_free(shifted) == []
        assert len(shifted) == len(meteo)

    def test_empty(self):
        empty = TPRelation.from_rows("r", ("x",), [])
        assert len(shifted_counterpart(empty)) == 0

    def test_name(self, rel_a):
        assert shifted_counterpart(rel_a).name == "a_shifted"
        assert shifted_counterpart(rel_a, name="a2").name == "a2"


class TestDatasetStats:
    def test_hand_computed(self):
        r = TPRelation.from_rows(
            "r", ("x",), [("f", 0, 4, 0.5), ("f", 6, 8, 0.5), ("g", 2, 5, 0.5)]
        )
        stats = dataset_stats(r)
        assert stats.cardinality == 3
        assert stats.time_range == 8
        assert stats.min_duration == 2
        assert stats.max_duration == 4
        assert stats.avg_duration == pytest.approx(3.0)
        assert stats.n_facts == 2
        assert stats.distinct_points == 6
        assert stats.max_tuples_per_point == 2  # t ∈ [2,4): f and g
        assert stats.avg_tuples_per_point == pytest.approx(9 / 8)
        assert stats.max_boundary_burst == 1

    def test_empty(self):
        empty = TPRelation.from_rows("r", ("x",), [])
        assert dataset_stats(empty).cardinality == 0

    def test_render(self):
        r = TPRelation.from_rows("r", ("x",), [("f", 0, 4, 0.5)])
        text = render_stats_table(dataset_stats(r))
        assert "Cardinality" in text and "r" in text
