"""Tests for the TPDatabase facade, catalog and repeated-subgoal queries."""

from __future__ import annotations

import pytest

from repro import UnknownRelationError, UnsupportedOperationError
from repro.db import TPDatabase
from repro.semantics import marginal_via_worlds


@pytest.fixture
def db(rel_a, rel_b, rel_c) -> TPDatabase:
    database = TPDatabase()
    database.register(rel_a)
    database.register(rel_b)
    database.register(rel_c)
    return database


class TestDataDefinition:
    def test_create_relation(self):
        db = TPDatabase()
        r = db.create_relation("inv", ("item",), [("milk", 1, 4, 0.6)])
        assert db.relation("inv") is r

    def test_duplicate_name_rejected(self, db, rel_a):
        with pytest.raises(ValueError, match="already registered"):
            db.register(rel_a)

    def test_replace(self, db, rel_a):
        db.register(rel_a.rename("a"), replace=True)

    def test_invalid_name_rejected(self):
        db = TPDatabase()
        with pytest.raises(ValueError, match="identifier"):
            db.create_relation("not a name!", ("x",), [("v", 1, 2, 0.5)])

    def test_unknown_relation(self, db):
        with pytest.raises(UnknownRelationError):
            db.relation("ghost")

    def test_drop(self, db):
        db.catalog.drop("a")
        with pytest.raises(UnknownRelationError):
            db.relation("a")

    def test_catalog_mapping_protocol(self, db):
        assert set(db.catalog) == {"a", "b", "c"}
        assert len(db.catalog) == 3


class TestQuerying:
    def test_paper_query_text(self, db):
        result = db.query("c - (a | b)")
        assert len(result) == 5

    def test_algorithm_selection(self, db):
        lawa = db.query("a & c")
        norm = db.query("a & c", algorithm="NORM")
        assert lawa.equivalent_to(norm)

    def test_capability_violation(self, db):
        with pytest.raises(UnsupportedOperationError):
            db.query("a - c", algorithm="OIP")

    def test_explain(self, db):
        text = db.explain("c - (a | b)")
        assert "Except[LAWA]" in text
        assert "PTIME" in text

    def test_analyze(self, db):
        assert db.analyze("c - (a | b)").non_repeating

    def test_repr(self, db):
        assert "3 relations" in repr(db)


class TestRepeatedSubgoals:
    """Queries outside Theorem 1: repeated relations, #P-hard lineage.

    The executor must still produce numerically correct probabilities by
    falling back to exact non-1OF valuation; we verify against
    brute-force possible-worlds enumeration of the whole query.
    """

    def test_r_minus_r_is_empty_probability(self):
        db = TPDatabase()
        db.create_relation("r", ("x",), [("v", 1, 5, 0.7)])
        result = db.query("r - r")
        # r −Tp r keeps the tuple (probabilistic difference) with lineage
        # r1 ∧ ¬r1 ≡ false, so its probability must be exactly 0.
        (t,) = list(result)
        assert str(t.lineage) == "r1∧¬r1"
        assert t.p == pytest.approx(0.0)

    def test_r_union_r_keeps_probability(self):
        db = TPDatabase()
        db.create_relation("r", ("x",), [("v", 1, 5, 0.7)])
        (t,) = list(db.query("r | r"))
        assert t.p == pytest.approx(0.7)

    def test_hard_query_against_worlds(self, rel_a, rel_c):
        """(a ∪ c) − (a ∩ c): the symmetric difference idiom, with `a`
        and `c` repeated — lineage is not 1OF."""
        db = TPDatabase()
        db.register(rel_a)
        db.register(rel_c)
        result = db.query("(a | c) - (a & c)")
        analysis = db.analyze("(a | c) - (a & c)")
        assert not analysis.non_repeating

        for t in result:
            for point in (t.start, t.end - 1):
                in_a = any(
                    u.fact == t.fact and u.interval.contains_point(point) for u in rel_a
                )
                in_c = any(
                    u.fact == t.fact and u.interval.contains_point(point) for u in rel_c
                )
                # symmetric difference marginal via inclusion-exclusion
                # over the two independent base tuples (at most one each).
                p_a = next(
                    (
                        u.p
                        for u in rel_a
                        if u.fact == t.fact and u.interval.contains_point(point)
                    ),
                    0.0,
                )
                p_c = next(
                    (
                        u.p
                        for u in rel_c
                        if u.fact == t.fact and u.interval.contains_point(point)
                    ),
                    0.0,
                )
                expected = p_a + p_c - 2 * p_a * p_c if (in_a or in_c) else 0.0
                assert t.p == pytest.approx(expected), (t.fact, point)

    def test_hard_query_small_worlds_oracle(self):
        db = TPDatabase()
        db.create_relation("r1", ("x",), [("v", 0, 4, 0.5)])
        db.create_relation("r2", ("x",), [("v", 2, 6, 0.4)])
        db.create_relation("r3", ("x",), [("v", 1, 5, 0.9)])
        # The paper's #P-hard example query shape.
        result = db.query("(r1 | r2) - (r1 & r3)")
        r1, r2, r3 = db.relation("r1"), db.relation("r2"), db.relation("r3")
        events = {**r1.events, **r2.events, **r3.events}
        from itertools import product as cartesian

        for t in result:
            point = t.start
            expected = 0.0
            for bits in cartesian((False, True), repeat=3):
                world = dict(zip(sorted(events), bits))
                weight = 1.0
                for name, present in world.items():
                    weight *= events[name] if present else 1 - events[name]
                in_r1 = world["r11"] and r1.tuples[0].interval.contains_point(point)
                in_r2 = world["r21"] and r2.tuples[0].interval.contains_point(point)
                in_r3 = world["r31"] and r3.tuples[0].interval.contains_point(point)
                if (in_r1 or in_r2) and not (in_r1 and in_r3):
                    expected += weight
            assert t.p == pytest.approx(expected), t


class TestWorldOracleHelpers:
    def test_marginal_via_worlds_simple(self, rel_a, rel_c):
        # 'milk' at t=2: in a (p=.3) and in c (p=.6) → union marginal.
        p = marginal_via_worlds("union", rel_a, rel_c, ("milk",), 2)
        assert p == pytest.approx(1 - 0.7 * 0.4)

    def test_marginal_except(self, rel_a, rel_c):
        p = marginal_via_worlds("except", rel_c, rel_a, ("milk",), 2)
        assert p == pytest.approx(0.6 * 0.7)

    def test_unknown_op(self, rel_a, rel_c):
        with pytest.raises(ValueError):
            marginal_via_worlds("xor", rel_a, rel_c, ("milk",), 2)
