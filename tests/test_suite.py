"""Tier-1 tests for the unified benchmark suite runner.

A tiny-scale end-to-end run proves the whole chain the CI smoke leg
relies on: ``run_suite`` sweeps the configuration grid, asserts
cross-configuration equivalence before timing, emits a schema-valid
record, and ``check_regression.check_suite`` consumes that record
without failures.  Same-seed determinism of the scenario inputs is
pinned here too (the suite's acceptance criterion).
"""

from __future__ import annotations

import pytest

from benchmarks.check_regression import check_suite
from benchmarks.suite import (
    SCHEMA_VERSION,
    Config,
    build_parser,
    configs_for,
    run_suite,
)
from repro.bench.workloads import SCENARIOS, iter_scenarios

SCALE = 0.002  # a few dozen tuples per relation: grid sweep in seconds
SEED = 7


@pytest.fixture(scope="module")
def record():
    """One tiny full-catalog suite run shared by the assertions below."""
    return run_suite(scale=SCALE, seed=SEED, rounds=1, verbose=False)


def test_config_grids_start_with_the_reference():
    assert configs_for("query")[0] == Config()
    for kind in ("query", "delta-storm", "session", "commit-stream", "serving"):
        labels = [config.label for config in configs_for(kind)]
        assert len(labels) == len(set(labels))
    with pytest.raises(ValueError):
        configs_for("stress")


def test_record_is_schema_valid(record):
    assert record["schema_version"] == SCHEMA_VERSION
    meta = record["meta"]
    assert meta["scale"] == SCALE and meta["seed"] == SEED
    assert set(meta["scenario_fingerprints"]) == {s.name for s in SCENARIOS}
    assert set(record["scenarios"]) == {s.name for s in SCENARIOS}
    for name, entry in record["scenarios"].items():
        assert entry["equivalence"]["asserted"] is True, name
        assert entry["equivalence"]["result_rows"] > 0, name
        labels = entry["equivalence"]["configs"]
        assert set(entry["timings"]) == set(labels), name
        for label, timing in entry["timings"].items():
            assert timing["min_s"] >= 0.0 and timing["rounds"] == 1, (name, label)
        for value in entry["ratios"].values():
            assert value > 0.0, name


def test_check_suite_accepts_the_record(record):
    # The record gates against itself: schema, equivalence, presence
    # and (CPU permitting) the ratio floors all hold.
    assert check_suite(record, record, 0.0, 0.002) == []


def test_check_suite_flags_missing_scenario(record):
    smoke = {
        "schema_version": record["schema_version"],
        "meta": record["meta"],
        "scenarios": {
            name: entry
            for name, entry in record["scenarios"].items()
            if name != "commit_stream"
        },
    }
    failures = check_suite(record, smoke, 0.0, 0.002)
    assert any("commit_stream" in failure for failure in failures)


def test_check_suite_flags_unasserted_equivalence(record):
    import copy

    smoke = copy.deepcopy(record)
    smoke["scenarios"]["uniform_setops"]["equivalence"]["asserted"] = False
    failures = check_suite(record, smoke, 0.0, 0.002)
    assert any("equivalence" in failure for failure in failures)


def test_same_seed_runs_use_identical_scenario_inputs(record):
    """The acceptance criterion: a rerun with the same seed generates
    byte-identical scenario inputs (witnessed by the fingerprints the
    record carries)."""
    rebuilt = {
        s.name: s.fingerprint() for s in iter_scenarios(scale=SCALE, seed=SEED)
    }
    assert record["meta"]["scenario_fingerprints"] == rebuilt


def test_cli_surface():
    parser = build_parser()
    args = parser.parse_args(
        ["--scale", "0.1", "--seed", "7", "--rounds", "2", "--scenarios", "delta_storm"]
    )
    assert args.scale == 0.1 and args.seed == 7
    assert args.rounds == 2 and args.scenarios == ["delta_storm"]
