"""Legacy setup shim.

The execution environment ships setuptools without the ``wheel`` package
and has no network access, so PEP 517/660 editable installs (which build a
wheel) fail.  This shim enables ``pip install -e . --no-use-pep517``.
All project metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
